package sim

import (
	"math"

	"eflora/internal/engine"
	"eflora/internal/lora"
	"eflora/internal/model"
	"eflora/internal/rng"
	"eflora/internal/slab"
)

// ConfirmedConfig extends Config for confirmed (acknowledged) uplink
// traffic: a device that receives no acknowledgement retransmits after an
// ACK timeout plus random backoff, up to MaxAttempts transmissions per
// packet — LoRaWAN confirmed-uplink behaviour. Retransmissions add load,
// which adds collisions, which adds retransmissions: the feedback loop the
// unconfirmed energy approximation (Result.RetxAvgPowerW) linearizes away.
type ConfirmedConfig struct {
	Config
	// MaxAttempts per packet including the first transmission
	// (default 8, the LoRaWAN limit).
	MaxAttempts int
	// AckTimeoutS is the delay before a retransmission (nil means 2 s, the
	// class-A RX-window span), to which a uniform random backoff of up to
	// BackoffS is added (nil means 4 s). They are pointers so an explicit
	// zero — retransmit immediately, or no random backoff — is honoured
	// rather than silently rewritten to the default.
	AckTimeoutS, BackoffS *float64
	// HalfDuplexAcks models the gateway's transmit cost: the gateway that
	// acknowledges a packet cannot receive while its downlink is in the
	// air (LoRa gateways are half-duplex), so uplinks arriving during the
	// ACK are lost at that gateway. The ACK goes out in RX1 (1 s after
	// the uplink) at the uplink's spreading factor.
	HalfDuplexAcks bool

	// hooks, when non-nil, replaces the initial schedule's jitter and
	// fading draws — the in-package seam the differential batch-vs-confirmed
	// test uses to replay sim.Run's exact randomness through this event
	// loop. Retransmission draws always come from the run's own RNG.
	hooks *confirmedHooks
}

// confirmedHooks supplies the initial-schedule randomness: jitter returns
// the uniform [0,1) draw for device dev's m-th packet, fading the Rayleigh
// power gain for that packet at gateway k.
type confirmedHooks struct {
	jitter func(dev, m int) float64
	fading func(dev, m, k int) float64
}

// DefaultAckTimeoutS and DefaultBackoffS are the retransmission-timing
// defaults used when the corresponding ConfirmedConfig pointer is nil.
const (
	DefaultAckTimeoutS = 2.0
	DefaultBackoffS    = 4.0
)

func (c ConfirmedConfig) withDefaults() ConfirmedConfig {
	c.Config = c.Config.withDefaults()
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = MaxTransmissions
	}
	if c.AckTimeoutS == nil {
		v := DefaultAckTimeoutS
		c.AckTimeoutS = &v
	}
	if c.BackoffS == nil {
		v := DefaultBackoffS
		c.BackoffS = &v
	}
	return c
}

// ConfirmedResult extends Result with confirmed-traffic accounting.
type ConfirmedResult struct {
	Result
	// Generated counts packets handed to the MAC per device; Attempts in
	// the embedded Result counts transmissions (>= Generated).
	Generated []int
	// Retransmissions counts transmissions beyond each packet's first.
	Retransmissions int
	// Abandoned counts packets dropped after MaxAttempts.
	Abandoned int
	// AckBlocked counts uplink receptions lost because the gateway was
	// transmitting an acknowledgement (HalfDuplexAcks only).
	AckBlocked int
}

// cTx is one transmission attempt, stored inline in the event loop's slab
// (heaps hold slab indices, so nothing is boxed per event). Received
// powers live in the flattened companion slab (attempt t, gateway k at
// t*g+k); per-gateway lock and collision state lives inside the engines.
type cTx struct {
	dev     int
	attempt int // 1-based
	outGw   int // lowest delivering gateway, -1 otherwise
	start   float64
	end     float64
	outcome Outcome
}

// confirmedRun is RunConfirmed's event-loop state, resident in a Scratch
// so repeated runs reuse the slabs, the heaps and the per-gateway engines.
// The wiring fields are rebound every run.
type confirmedRun struct {
	// Arena (persists across runs at high-water capacity).
	ctxs         []cTx
	rxMW         []float64
	starts, ends []int32
	eng          []engine.Gateway
	trace        []PacketRecord
	res          ConfirmedResult

	// Per-run wiring.
	g           int
	r           *rng.RNG
	gains       [][]float64
	sf          []lora.SF
	ch          []int
	toa, tpMW   []float64
	ackToA      [6]float64
	maxAttempts int
	ackTimeoutS float64
	backoffS    float64
	halfDuplex  bool
	traceOn     bool
	hooks       *confirmedHooks
}

// The two index heaps replicate container/heap's sift order exactly
// (identical comparisons produce identical layouts and therefore an
// identical pop order, which the confirmed golden digest pins) while
// keeping attempts unboxed in the slab.

// less orders heap entries by slab start (byEnd false) or end (byEnd true).
func (c *confirmedRun) less(h []int32, byEnd bool, x, y int) bool {
	a, b := h[x], h[y]
	if byEnd {
		return c.ctxs[a].end < c.ctxs[b].end
	}
	return c.ctxs[a].start < c.ctxs[b].start
}

//eflora:hotpath
func (c *confirmedRun) heapPush(h []int32, byEnd bool, v int32) []int32 {
	h = append(h, v)
	j := len(h) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !c.less(h, byEnd, j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
	return h
}

//eflora:hotpath
func (c *confirmedRun) heapPop(h []int32, byEnd bool) ([]int32, int32) {
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	c.heapDown(h[:n], byEnd)
	return h[:n], h[n]
}

func (c *confirmedRun) heapDown(h []int32, byEnd bool) {
	n := len(h)
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && c.less(h, byEnd, j2, j) {
			j = j2
		}
		if !c.less(h, byEnd, j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// newTx appends one attempt to the slab, drawing (or replaying, for the
// initial schedule under hooks) its per-gateway fading. m is the packet
// index for hook lookups, -1 for retransmissions.
//
//eflora:hotpath
func (c *confirmedRun) newTx(dev, attempt, m int, start float64) int32 {
	idx := int32(len(c.ctxs))
	c.ctxs = append(c.ctxs, cTx{
		dev: dev, attempt: attempt, outGw: -1,
		start: start, end: start + c.toa[dev],
	})
	tp := c.tpMW[dev]
	for k := 0; k < c.g; k++ {
		var f float64
		if c.hooks != nil && m >= 0 {
			f = c.hooks.fading(dev, m, k)
		} else {
			f = c.r.RayleighPowerGain()
		}
		c.rxMW = append(c.rxMW, tp*c.gains[dev][k]*f)
	}
	return idx
}

// handleStart presents the attempt to every gateway's receiver. Arrival
// rejections that out-rank the running outcome (a full or ACK-deaf
// gateway) are folded in here; lock verdicts arrive later via handleEnd.
//
//eflora:hotpath
func (c *confirmedRun) handleStart(t int32) {
	tx := &c.ctxs[t]
	c.res.Attempts[tx.dev]++
	sf, ch := c.sf[tx.dev], c.ch[tx.dev]
	base := int(t) * c.g
	for k := 0; k < c.g; k++ {
		switch c.eng[k].Arrive(int(t), tx.dev, sf, ch, tx.start, tx.end, c.rxMW[base+k]) {
		case engine.VerdictBlocked, engine.VerdictNoCapacity:
			if OutcomeCapacity > tx.outcome {
				tx.outcome = OutcomeCapacity
			}
		}
	}
}

// handleEnd completes the attempt at every gateway, schedules the ACK
// window or the retransmission, and settles the packet's accounting.
//
//eflora:hotpath
func (c *confirmedRun) handleEnd(t int32) {
	tx := &c.ctxs[t]
	delivered := false
	for k := 0; k < c.g; k++ {
		d, ok := c.eng[k].Complete(int(t))
		if !ok {
			continue
		}
		if d.Outcome == OutcomeDelivered {
			delivered = true
		}
		if d.Outcome > tx.outcome {
			tx.outcome = d.Outcome
			if d.Outcome == OutcomeDelivered {
				tx.outGw = k
			}
		}
	}
	if delivered && c.halfDuplex {
		// The network server answers through the best gateway in RX1, one
		// second after the uplink, using the uplink's SF; that gateway is
		// deaf for the ACK's air time (~13-byte frame).
		ackStart := tx.end + 1
		c.eng[tx.outGw].AddAckWindow(ackStart, ackStart+c.ackToA[c.sf[tx.dev]-lora.SF7])
	}
	// Copy before the retransmit branch: newTx appends to the slab and may
	// move it, invalidating tx.
	v := *tx
	switch {
	case delivered:
		c.res.Delivered[v.dev]++
	case v.attempt < c.maxAttempts:
		c.res.Retransmissions++
		backoff := c.ackTimeoutS + c.r.Float64()*c.backoffS
		nt := c.newTx(v.dev, v.attempt+1, -1, v.end+backoff)
		c.starts = c.heapPush(c.starts, false, nt)
	default:
		c.res.Abandoned++
	}
	if c.traceOn {
		c.trace = append(c.trace, PacketRecord{
			Device: v.dev, StartS: v.start, Outcome: v.outcome, Gateway: v.outGw,
		})
	}
}

// RunConfirmed simulates confirmed uplink traffic with retransmissions.
// Unlike Run, the event loop is inherently sequential — every delivery
// outcome feeds back into the future schedule through retransmission
// timing — so Config.Parallelism is ignored here. Reception physics lives
// in the shared engine.Gateway (one per gateway, half-duplex mode); this
// loop owns the schedule, the retransmission policy and the ACK windows.
//
// Config.Trace is honoured: one record per transmission attempt, appended
// in completion order (sort by StartS to recover schedule order). With a
// Config.Scratch the returned result aliases the scratch's buffers under
// the same contract as Run.
//
//eflora:hotpath
func RunConfirmed(net *model.Network, p model.Params, a model.Allocation, cfg ConfirmedConfig) (*ConfirmedResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := net.Validate(p); err != nil {
		return nil, err
	}
	if err := a.Validate(net.N(), p); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	n, g := net.N(), net.G()
	sc := cfg.Scratch
	if sc == nil {
		sc = new(Scratch)
	}
	c := &sc.crun
	r := rng.New(cfg.Seed)
	gains := model.Gains(net, p)
	noiseMW := lora.DBmToMilliwatts(p.NoiseDBm)
	captureLin := lora.DBToLinear(*cfg.CaptureThresholdDB)
	simEnd, _ := deviceSchedule(sc, net, p, a, cfg.PacketsPerDevice)

	c.g = g
	c.r = r
	c.gains = gains
	c.sf, c.ch = a.SF, a.Channel
	c.toa, c.tpMW = sc.toa, sc.tpMW
	for _, s := range lora.SFs() {
		c.ackToA[s-lora.SF7] = lora.TimeOnAir(13, s, p.BandwidthHz, p.CodingRate)
	}
	c.maxAttempts = cfg.MaxAttempts
	c.ackTimeoutS = *cfg.AckTimeoutS
	c.backoffS = *cfg.BackoffS
	c.halfDuplex = cfg.HalfDuplexAcks
	c.traceOn = cfg.Trace
	c.hooks = cfg.hooks

	c.ctxs = c.ctxs[:0]
	c.rxMW = c.rxMW[:0]
	c.starts = c.starts[:0]
	c.ends = c.ends[:0]
	c.trace = c.trace[:0]
	c.eng = slab.Grow(c.eng, g)
	engCfg := engineConfig(p, captureLin, noiseMW, cfg.Capture, cfg.HalfDuplexAcks)
	for k := range c.eng {
		c.eng[k].Reset(engCfg)
	}

	res := &c.res
	res.Attempts = slab.GrowZero(res.Attempts, n)
	res.Delivered = slab.GrowZero(res.Delivered, n)
	res.PRR = slab.Grow(res.PRR, n)
	res.TxEnergyJ = slab.Grow(res.TxEnergyJ, n)
	res.TotalEnergyJ = slab.Grow(res.TotalEnergyJ, n)
	res.EE = slab.GrowZero(res.EE, n)
	res.AvgPowerW = slab.Grow(res.AvgPowerW, n)
	res.RetxAvgPowerW = slab.Grow(res.RetxAvgPowerW, n)
	res.SimTimeS = simEnd
	res.CollisionLosses, res.CapacityDrops, res.SensitivityMisses = 0, 0, 0
	res.Trace, res.MaxSNRdB = nil, nil
	res.Generated = slab.GrowZero(res.Generated, n)
	res.Retransmissions, res.Abandoned, res.AckBlocked = 0, 0, 0

	// Initial schedule: one packet per device per period, jittered so a
	// device never overlaps itself. RNG order (jitter, then per-gateway
	// fading, device-major) is pinned by the confirmed golden digest.
	for i := 0; i < n; i++ {
		slack := sc.interval[i] - sc.toa[i]
		if slack < 0 {
			slack = 0
		}
		for m := 0; m < sc.packets[i]; m++ {
			res.Generated[i]++
			var j float64
			if c.hooks != nil {
				j = c.hooks.jitter(i, m)
			} else {
				j = r.Float64()
			}
			t := c.newTx(i, 1, m, float64(m)*sc.interval[i]+j*slack)
			c.starts = c.heapPush(c.starts, false, t)
		}
	}

	for len(c.starts) > 0 || len(c.ends) > 0 {
		if len(c.ends) == 0 ||
			(len(c.starts) > 0 && c.ctxs[c.starts[0]].start < c.ctxs[c.ends[0]].end) {
			var t int32
			c.starts, t = c.heapPop(c.starts, false)
			c.handleStart(t)
			c.ends = c.heapPush(c.ends, true, t)
		} else {
			var t int32
			c.ends, t = c.heapPop(c.ends, true)
			c.handleEnd(t)
		}
	}

	for k := 0; k < g; k++ {
		cc := c.eng[k].Counters
		res.CollisionLosses += cc.CollisionLosses
		res.CapacityDrops += cc.CapacityDrops
		res.SensitivityMisses += cc.SensitivityMisses
		res.AckBlocked += cc.AckBlocked
	}
	if c.traceOn {
		res.Trace = c.trace
	}

	lbits := p.AppPayloadBits()
	for i := 0; i < n; i++ {
		res.PRR[i] = float64(res.Delivered[i]) / float64(res.Generated[i])
		eTx := p.Profile.TransmissionEnergy(a.TPdBm[i], sc.toa[i]) * float64(res.Attempts[i])
		res.TxEnergyJ[i] = eTx
		activeT := (p.Profile.OverheadDuration() + sc.toa[i]) * float64(res.Attempts[i])
		sleep := simEnd - activeT
		if sleep < 0 {
			sleep = 0
		}
		res.TotalEnergyJ[i] = eTx + p.Profile.SleepPowerDraw()*sleep
		res.EE[i] = 0
		if eTx > 0 {
			res.EE[i] = lbits * float64(res.Delivered[i]) / eTx
		}
		res.AvgPowerW[i] = res.TotalEnergyJ[i] / simEnd
		// Under confirmed traffic the energy already contains the
		// retransmissions, so both power views coincide.
		res.RetxAvgPowerW[i] = res.AvgPowerW[i]
		if math.IsNaN(res.PRR[i]) {
			res.PRR[i] = 0
		}
	}
	return res, nil
}
