package sim

import (
	"container/heap"
	"math"

	"eflora/internal/lora"
	"eflora/internal/model"
	"eflora/internal/rng"
)

// ConfirmedConfig extends Config for confirmed (acknowledged) uplink
// traffic: a device that receives no acknowledgement retransmits after an
// ACK timeout plus random backoff, up to MaxAttempts transmissions per
// packet — LoRaWAN confirmed-uplink behaviour. Retransmissions add load,
// which adds collisions, which adds retransmissions: the feedback loop the
// unconfirmed energy approximation (Result.RetxAvgPowerW) linearizes away.
type ConfirmedConfig struct {
	Config
	// MaxAttempts per packet including the first transmission
	// (default 8, the LoRaWAN limit).
	MaxAttempts int
	// AckTimeoutS is the delay before a retransmission (default 2 s, the
	// class-A RX-window span), to which a uniform random backoff of up to
	// BackoffS is added (default 4 s).
	AckTimeoutS, BackoffS float64
	// HalfDuplexAcks models the gateway's transmit cost: the gateway that
	// acknowledges a packet cannot receive while its downlink is in the
	// air (LoRa gateways are half-duplex), so uplinks arriving during the
	// ACK are lost at that gateway. The ACK goes out in RX1 (1 s after
	// the uplink) at the uplink's spreading factor.
	HalfDuplexAcks bool
}

func (c ConfirmedConfig) withDefaults() ConfirmedConfig {
	c.Config = c.Config.withDefaults()
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = MaxTransmissions
	}
	if c.AckTimeoutS <= 0 {
		c.AckTimeoutS = 2
	}
	if c.BackoffS <= 0 {
		c.BackoffS = 4
	}
	return c
}

// ConfirmedResult extends Result with confirmed-traffic accounting.
type ConfirmedResult struct {
	Result
	// Generated counts packets handed to the MAC per device; Attempts in
	// the embedded Result counts transmissions (>= Generated).
	Generated []int
	// Retransmissions counts transmissions beyond each packet's first.
	Retransmissions int
	// Abandoned counts packets dropped after MaxAttempts.
	Abandoned int
	// AckBlocked counts uplink receptions lost because the gateway was
	// transmitting an acknowledgement (HalfDuplexAcks only).
	AckBlocked int
}

// cTx is one transmission attempt in flight.
type cTx struct {
	dev      int
	attempt  int // 1-based
	start    float64
	end      float64
	sf       lora.SF
	ch       int
	tpMW     float64
	rxMW     []float64 // per gateway
	locked   []bool
	collided []bool
}

// txHeap orders transmissions by a timestamp selected by the less func.
type txHeap struct {
	items []*cTx
	key   func(*cTx) float64
}

func (h *txHeap) Len() int           { return len(h.items) }
func (h *txHeap) Less(i, j int) bool { return h.key(h.items[i]) < h.key(h.items[j]) }
func (h *txHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *txHeap) Push(x interface{}) { h.items = append(h.items, x.(*cTx)) }
func (h *txHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// RunConfirmed simulates confirmed uplink traffic with retransmissions.
// Unlike Run, the event loop is inherently sequential — every delivery
// outcome feeds back into the future schedule through retransmission
// timing — so Config.Parallelism is ignored here.
//
//eflora:hotpath
func RunConfirmed(net *model.Network, p model.Params, a model.Allocation, cfg ConfirmedConfig) (*ConfirmedResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := net.Validate(p); err != nil {
		return nil, err
	}
	if err := a.Validate(net.N(), p); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	n, g := net.N(), net.G()
	r := rng.New(cfg.Seed)
	gains := model.Gains(net, p)
	noiseMW := lora.DBmToMilliwatts(p.NoiseDBm)
	captureLin := lora.DBToLinear(*cfg.CaptureThresholdDB)

	toa := make([]float64, n)
	tpMW := make([]float64, n)
	interval := make([]float64, n)
	packets := make([]int, n)
	simEnd := 0.0
	for i := 0; i < n; i++ {
		toa[i] = p.TimeOnAir(a.SF[i])
		tpMW[i] = lora.DBmToMilliwatts(a.TPdBm[i])
		interval[i] = p.IntervalFor(net, i, a.SF[i])
		if t := interval[i] * float64(cfg.PacketsPerDevice); t > simEnd {
			simEnd = t
		}
	}
	for i := 0; i < n; i++ {
		packets[i] = int(simEnd / interval[i])
		if packets[i] < cfg.PacketsPerDevice {
			packets[i] = cfg.PacketsPerDevice
		}
	}

	res := &ConfirmedResult{
		Result: Result{
			Attempts:      make([]int, n),
			Delivered:     make([]int, n),
			PRR:           make([]float64, n),
			TxEnergyJ:     make([]float64, n),
			TotalEnergyJ:  make([]float64, n),
			EE:            make([]float64, n),
			AvgPowerW:     make([]float64, n),
			RetxAvgPowerW: make([]float64, n),
			SimTimeS:      simEnd,
		},
		Generated: make([]int, n),
	}

	newTx := func(dev int, attempt int, start float64) *cTx {
		t := &cTx{
			dev:      dev,
			attempt:  attempt,
			start:    start,
			end:      start + toa[dev],
			sf:       a.SF[dev],
			ch:       a.Channel[dev],
			tpMW:     tpMW[dev],
			rxMW:     make([]float64, g),
			locked:   make([]bool, g),
			collided: make([]bool, g),
		}
		for k := 0; k < g; k++ {
			t.rxMW[k] = t.tpMW * gains[dev][k] * r.RayleighPowerGain()
		}
		return t
	}

	starts := &txHeap{key: func(t *cTx) float64 { return t.start }}
	ends := &txHeap{key: func(t *cTx) float64 { return t.end }}
	heap.Init(starts)
	heap.Init(ends)

	// Initial schedule: one packet per device per period, jittered so a
	// device never overlaps itself.
	for i := 0; i < n; i++ {
		slack := interval[i] - toa[i]
		if slack < 0 {
			slack = 0
		}
		for m := 0; m < packets[i]; m++ {
			res.Generated[i]++
			//eflora:alloc-ok container/heap boxes once per event; the confirmed path models retransmission feedback and is deliberately not zero-alloc (only Run has an alloc budget)
			heap.Push(starts, newTx(i, 1, float64(m)*interval[i]+r.Float64()*slack))
		}
	}

	// Per-gateway reception state. ackWins holds the half-duplex ACK
	// windows during which a gateway's downlink is in the air and it
	// cannot lock onto uplinks.
	active := make([][]*cTx, g)
	lockedCount := make([]int, g)
	type ackWin struct{ from, to float64 }
	ackWins := make([][]ackWin, g)

	handleStart := func(t *cTx) {
		res.Attempts[t.dev]++
		for k := 0; k < g; k++ {
			if t.rxMW[k] < lora.DBmToMilliwatts(lora.SensitivityDBm(t.sf)) {
				res.SensitivityMisses++
				continue
			}
			// RF energy corrupts overlapping locked same-SF same-channel
			// receptions whether or not this transmission itself finds a
			// free demodulator (or a gateway deaf from an ACK), so the
			// collision scan runs before those checks — mirroring the
			// unconfirmed simulator. Marks on t itself are ignored later
			// unless t locks.
			for _, o := range active[k] {
				if o.dev == t.dev || o.sf != t.sf || o.ch != t.ch {
					continue
				}
				if cfg.Capture {
					switch {
					case t.rxMW[k] >= captureLin*o.rxMW[k]:
						o.collided[k] = true
					case o.rxMW[k] >= captureLin*t.rxMW[k]:
						t.collided[k] = true
					default:
						t.collided[k] = true
						o.collided[k] = true
					}
				} else {
					t.collided[k] = true
					o.collided[k] = true
				}
			}
			if cfg.HalfDuplexAcks {
				// Prune finished ACK windows, then block the uplink if
				// any remaining downlink overlaps it in time.
				wins := ackWins[k][:0]
				blocked := false
				for _, w := range ackWins[k] {
					if w.to <= t.start {
						continue
					}
					wins = append(wins, w)
					if w.from < t.end && t.start < w.to {
						blocked = true
					}
				}
				ackWins[k] = wins
				if blocked {
					res.AckBlocked++
					continue
				}
			}
			if lockedCount[k] >= p.GatewayCapacity {
				res.CapacityDrops++
				continue
			}
			t.locked[k] = true
			lockedCount[k]++
			active[k] = append(active[k], t)
		}
	}

	handleEnd := func(t *cTx) {
		delivered := false
		ackGateway := -1
		for k := 0; k < g; k++ {
			if !t.locked[k] {
				continue
			}
			lockedCount[k]--
			// Remove from the gateway's active list.
			lst := active[k]
			for i, o := range lst {
				if o == t {
					lst[i] = lst[len(lst)-1]
					active[k] = lst[:len(lst)-1]
					break
				}
			}
			snrOK := t.rxMW[k]/noiseMW >= lora.DBToLinear(lora.SNRThresholdDB(t.sf))
			if t.collided[k] {
				res.CollisionLosses++
			} else if snrOK {
				delivered = true
				if ackGateway < 0 {
					ackGateway = k
				}
			}
		}
		if delivered && cfg.HalfDuplexAcks && ackGateway >= 0 {
			// The network server answers through the best gateway in
			// RX1, one second after the uplink, using the uplink's SF;
			// that gateway is deaf for the ACK's air time (~13-byte
			// frame).
			ackStart := t.end + 1
			ackEnd := ackStart + lora.TimeOnAir(13, t.sf, p.BandwidthHz, p.CodingRate)
			ackWins[ackGateway] = append(ackWins[ackGateway], ackWin{from: ackStart, to: ackEnd})
		}
		switch {
		case delivered:
			res.Delivered[t.dev]++
		case t.attempt < cfg.MaxAttempts:
			res.Retransmissions++
			backoff := cfg.AckTimeoutS + r.Float64()*cfg.BackoffS
			heap.Push(starts, newTx(t.dev, t.attempt+1, t.end+backoff))
		default:
			res.Abandoned++
		}
	}

	for starts.Len() > 0 || ends.Len() > 0 {
		if ends.Len() == 0 || (starts.Len() > 0 && starts.items[0].start < ends.items[0].end) {
			//eflora:alloc-ok container/heap boxes once per event; the confirmed path models retransmission feedback and is deliberately not zero-alloc (only Run has an alloc budget)
			t := heap.Pop(starts).(*cTx)
			handleStart(t)
			//eflora:alloc-ok container/heap boxes once per event; the confirmed path models retransmission feedback and is deliberately not zero-alloc (only Run has an alloc budget)
			heap.Push(ends, t)
		} else {
			//eflora:alloc-ok container/heap boxes once per event; the confirmed path models retransmission feedback and is deliberately not zero-alloc (only Run has an alloc budget)
			handleEnd(heap.Pop(ends).(*cTx))
		}
	}

	lbits := p.AppPayloadBits()
	for i := 0; i < n; i++ {
		res.PRR[i] = float64(res.Delivered[i]) / float64(res.Generated[i])
		eTx := p.Profile.TransmissionEnergy(a.TPdBm[i], toa[i]) * float64(res.Attempts[i])
		res.TxEnergyJ[i] = eTx
		activeT := (p.Profile.OverheadDuration() + toa[i]) * float64(res.Attempts[i])
		sleep := simEnd - activeT
		if sleep < 0 {
			sleep = 0
		}
		res.TotalEnergyJ[i] = eTx + p.Profile.SleepPowerDraw()*sleep
		if eTx > 0 {
			res.EE[i] = lbits * float64(res.Delivered[i]) / eTx
		}
		res.AvgPowerW[i] = res.TotalEnergyJ[i] / simEnd
		// Under confirmed traffic the energy already contains the
		// retransmissions, so both power views coincide.
		res.RetxAvgPowerW[i] = res.AvgPowerW[i]
		if math.IsNaN(res.PRR[i]) {
			res.PRR[i] = 0
		}
	}
	return res, nil
}
