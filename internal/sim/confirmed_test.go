package sim

import (
	"math"
	"sort"
	"testing"

	"eflora/internal/geo"
	"eflora/internal/lora"
	"eflora/internal/model"
	"eflora/internal/rng"
)

func TestConfirmedLoneDeviceNoRetransmissions(t *testing.T) {
	net, p, a := lonePair()
	res, err := RunConfirmed(net, p, a, ConfirmedConfig{Config: Config{PacketsPerDevice: 300, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated[0] != 300 {
		t.Fatalf("generated = %d", res.Generated[0])
	}
	// Near the gateway almost everything succeeds first try.
	if res.PRR[0] < 0.99 {
		t.Errorf("confirmed PRR = %v, want ~1 (retransmissions recover fades)", res.PRR[0])
	}
	if res.Attempts[0] < res.Generated[0] {
		t.Errorf("attempts %d below generated %d", res.Attempts[0], res.Generated[0])
	}
}

func TestConfirmedRetransmissionsRecoverFades(t *testing.T) {
	// A marginal link: unconfirmed PRR well below 1; confirmed delivery
	// must be substantially higher because each packet gets up to 8
	// tries.
	net := &model.Network{
		Devices:  []geo.Point{{X: 2800, Y: 0}},
		Gateways: []geo.Point{{}},
	}
	p := model.DefaultParams()
	a := model.NewAllocation(1, p.Plan)
	a.SF[0] = lora.SF7
	a.TPdBm[0] = 14
	un, err := Run(net, p, a, Config{PacketsPerDevice: 400, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	co, err := RunConfirmed(net, p, a, ConfirmedConfig{Config: Config{PacketsPerDevice: 400, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if un.PRR[0] > 0.9 {
		t.Fatalf("test setup: unconfirmed PRR %v too high to observe retransmissions", un.PRR[0])
	}
	if co.PRR[0] <= un.PRR[0]+0.1 {
		t.Errorf("confirmed PRR %v should exceed unconfirmed %v by a margin", co.PRR[0], un.PRR[0])
	}
	if co.Retransmissions == 0 {
		t.Error("expected retransmissions")
	}
	// Retransmissions cost energy: attempts > generated, energy above
	// the unconfirmed run.
	if co.TxEnergyJ[0] <= un.TxEnergyJ[0] {
		t.Errorf("confirmed TX energy %v should exceed unconfirmed %v", co.TxEnergyJ[0], un.TxEnergyJ[0])
	}
}

func TestConfirmedAbandonsAfterMaxAttempts(t *testing.T) {
	// An out-of-range device abandons every packet after MaxAttempts.
	net := &model.Network{
		Devices:  []geo.Point{{X: 60000, Y: 0}},
		Gateways: []geo.Point{{}},
	}
	p := model.DefaultParams()
	a := model.NewAllocation(1, p.Plan)
	a.SF[0] = lora.SF12
	a.TPdBm[0] = 14
	res, err := RunConfirmed(net, p, a, ConfirmedConfig{
		Config:      Config{PacketsPerDevice: 20, Seed: 5},
		MaxAttempts: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Abandoned != 20 {
		t.Errorf("abandoned = %d, want 20", res.Abandoned)
	}
	if res.Attempts[0] != 60 {
		t.Errorf("attempts = %d, want 20x3", res.Attempts[0])
	}
	if res.PRR[0] != 0 {
		t.Errorf("PRR = %v, want 0", res.PRR[0])
	}
}

func TestConfirmedLoadFeedback(t *testing.T) {
	// Two overloaded same-group devices: retransmissions add load on top
	// of an already collision-heavy channel, so the confirmed run sends
	// strictly more packets and still cannot reach unconfirmed-clean PRR.
	net := &model.Network{
		Devices:  []geo.Point{{X: 100, Y: 0}, {X: -100, Y: 0}},
		Gateways: []geo.Point{{}},
	}
	p := model.DefaultParams()
	p.PacketIntervalS = 6
	a := model.NewAllocation(2, p.Plan)
	for i := range a.SF {
		a.SF[i] = lora.SF12
		a.TPdBm[i] = 14
		a.Channel[i] = 0
	}
	res, err := RunConfirmed(net, p, a, ConfirmedConfig{Config: Config{PacketsPerDevice: 100, Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retransmissions == 0 {
		t.Fatal("expected heavy retransmission load")
	}
	total := res.Attempts[0] + res.Attempts[1]
	if total <= 200 {
		t.Errorf("total attempts %d should exceed generated 200", total)
	}
}

func TestConfirmedDeterministic(t *testing.T) {
	r := rng.New(11)
	net := &model.Network{
		Devices:  geo.UniformDisc(40, 2500, r),
		Gateways: geo.GridGateways(2, 2500),
	}
	p := model.DefaultParams()
	a := model.NewAllocation(40, p.Plan)
	for i := range a.SF {
		a.SF[i] = lora.SF9
		a.TPdBm[i] = 10
		a.Channel[i] = i % 8
	}
	r1, err := RunConfirmed(net, p, a, ConfirmedConfig{Config: Config{PacketsPerDevice: 30, Seed: 13}})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunConfirmed(net, p, a, ConfirmedConfig{Config: Config{PacketsPerDevice: 30, Seed: 13}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Delivered {
		if r1.Delivered[i] != r2.Delivered[i] || r1.Attempts[i] != r2.Attempts[i] {
			t.Fatalf("confirmed run not deterministic at device %d", i)
		}
	}
}

func TestConfirmedPowerViewsCoincide(t *testing.T) {
	net, p, a := lonePair()
	res, err := RunConfirmed(net, p, a, ConfirmedConfig{Config: Config{PacketsPerDevice: 50, Seed: 17}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.AvgPowerW[0]-res.RetxAvgPowerW[0]) > 1e-15 {
		t.Errorf("confirmed AvgPowerW %v != RetxAvgPowerW %v", res.AvgPowerW[0], res.RetxAvgPowerW[0])
	}
}

func TestConfirmedMatchesUnconfirmedFirstAttemptStats(t *testing.T) {
	// With MaxAttempts = 1 the confirmed engine degenerates to one try
	// per packet; aggregate PRR should statistically match the
	// fixed-schedule engine on the same network.
	r := rng.New(19)
	net := &model.Network{
		Devices:  geo.UniformDisc(60, 3000, r),
		Gateways: geo.GridGateways(2, 3000),
	}
	p := model.DefaultParams()
	gains := model.Gains(net, p)
	a := model.NewAllocation(60, p.Plan)
	for i := range a.SF {
		sf, ok := model.MinFeasibleSF(gains, i, 14)
		if !ok {
			sf = lora.MaxSF
		}
		a.SF[i] = sf
		a.TPdBm[i] = 14
		a.Channel[i] = i % 8
	}
	un, err := Run(net, p, a, Config{PacketsPerDevice: 200, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	co, err := RunConfirmed(net, p, a, ConfirmedConfig{
		Config:      Config{PacketsPerDevice: 200, Seed: 23},
		MaxAttempts: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var mu, mc float64
	for i := 0; i < 60; i++ {
		mu += un.PRR[i]
		mc += co.PRR[i]
	}
	mu /= 60
	mc /= 60
	if math.Abs(mu-mc) > 0.05 {
		t.Errorf("mean PRR: unconfirmed %v vs confirmed(1 attempt) %v", mu, mc)
	}
	if co.Retransmissions != 0 {
		t.Errorf("MaxAttempts=1 produced %d retransmissions", co.Retransmissions)
	}
}

func TestConfirmedValidatesInputs(t *testing.T) {
	net, p, a := lonePair()
	bad := p
	bad.PacketIntervalS = 0
	if _, err := RunConfirmed(net, bad, a, ConfirmedConfig{}); err == nil {
		t.Error("invalid params accepted")
	}
	short := model.NewAllocation(5, p.Plan)
	if _, err := RunConfirmed(net, p, short, ConfirmedConfig{}); err == nil {
		t.Error("mis-sized allocation accepted")
	}
}

func TestHalfDuplexAcksCostReceptions(t *testing.T) {
	// A busy single-gateway cell with confirmed traffic: modelling the
	// ACK transmissions must block some uplinks and reduce delivery.
	r := rng.New(31)
	net := &model.Network{
		Devices:  geo.UniformDisc(40, 800, r),
		Gateways: []geo.Point{{}},
	}
	p := model.DefaultParams()
	p.PacketIntervalS = 12
	a := model.NewAllocation(40, p.Plan)
	for i := range a.SF {
		a.SF[i] = lora.SF9
		a.TPdBm[i] = 14
		a.Channel[i] = i % 8
	}
	base, err := RunConfirmed(net, p, a, ConfirmedConfig{
		Config: Config{PacketsPerDevice: 60, Seed: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	hd, err := RunConfirmed(net, p, a, ConfirmedConfig{
		Config:         Config{PacketsPerDevice: 60, Seed: 32},
		HalfDuplexAcks: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if base.AckBlocked != 0 {
		t.Errorf("ACK blocking counted without the flag: %d", base.AckBlocked)
	}
	if hd.AckBlocked == 0 {
		t.Fatal("half-duplex ACKs blocked nothing on a busy cell")
	}
	var dBase, dHD int
	for i := range base.Delivered {
		dBase += base.Delivered[i]
		dHD += hd.Delivered[i]
	}
	if dHD >= dBase {
		t.Errorf("half-duplex delivery %d should be below free-ACK delivery %d", dHD, dBase)
	}
}

// TestConfirmedDefaultsHonorExplicitZeros pins the satellite bugfix: an
// explicit zero ACK timeout or backoff span (retransmit immediately, no
// random backoff) must survive withDefaults instead of being silently
// rewritten to the 2 s / 4 s defaults, mirroring how CaptureThresholdDB
// distinguishes "unset" from "zero" with a pointer.
func TestConfirmedDefaultsHonorExplicitZeros(t *testing.T) {
	zero := 0.0
	cfg := ConfirmedConfig{AckTimeoutS: &zero, BackoffS: &zero}.withDefaults()
	if *cfg.AckTimeoutS != 0 {
		t.Errorf("explicit AckTimeoutS=0 rewritten to %v", *cfg.AckTimeoutS)
	}
	if *cfg.BackoffS != 0 {
		t.Errorf("explicit BackoffS=0 rewritten to %v", *cfg.BackoffS)
	}
	def := ConfirmedConfig{}.withDefaults()
	if *def.AckTimeoutS != DefaultAckTimeoutS || *def.BackoffS != DefaultBackoffS {
		t.Errorf("nil timing defaults = %v/%v, want %v/%v",
			*def.AckTimeoutS, *def.BackoffS, DefaultAckTimeoutS, DefaultBackoffS)
	}

	// Behavioral check: zero timing retransmits back-to-back, so the run
	// still completes and counts retransmissions on a lossy cell.
	net, p, a := goldenNetwork(40, 2)
	res, err := RunConfirmed(net, p, a, ConfirmedConfig{
		Config:      Config{PacketsPerDevice: 4, Seed: 5},
		MaxAttempts: 3,
		AckTimeoutS: &zero,
		BackoffS:    &zero,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retransmissions == 0 {
		t.Error("no retransmissions on a collision-limited cell")
	}
}

// TestConfirmedSingleAttemptMatchesRun is the differential proof that the
// confirmed event loop drives the shared receiver engine identically to
// the batch simulator: with MaxAttempts=1 (no retransmissions, no ACK
// feedback) and the batch run's exact randomness replayed through the
// hooks seam, every counter, per-device statistic and trace record must
// match transmission-for-transmission.
func TestConfirmedSingleAttemptMatchesRun(t *testing.T) {
	net, p, a := goldenNetwork(80, 3)
	n := net.N()
	base := Config{PacketsPerDevice: 10, Seed: 21, Trace: true}

	for _, capture := range []bool{false, true} {
		cfg := base
		cfg.Capture = capture
		batch, err := Run(net, p, a, cfg)
		if err != nil {
			t.Fatal(err)
		}

		// Replicate the batch randomness: jitters device-major, then
		// fading per (sorted transmission, gateway) — the exact draw
		// order Run uses.
		sc := new(Scratch)
		deviceSchedule(sc, net, p, a, cfg.PacketsPerDevice)
		r := rng.New(cfg.Seed)
		jit := make([][]float64, n)
		starts := make([][]float64, n)
		type txKey struct{ dev, m int }
		var order []txKey
		for i := 0; i < n; i++ {
			jit[i] = make([]float64, sc.packets[i])
			starts[i] = make([]float64, sc.packets[i])
			slack := sc.interval[i] - sc.toa[i]
			if slack < 0 {
				slack = 0
			}
			for m := range jit[i] {
				u := r.Float64()
				jit[i][m] = u
				starts[i][m] = float64(m)*sc.interval[i] + u*slack
				order = append(order, txKey{i, m})
			}
		}
		sort.Slice(order, func(x, y int) bool {
			sx, sy := starts[order[x].dev][order[x].m], starts[order[y].dev][order[y].m]
			if sx != sy {
				return sx < sy
			}
			return order[x].dev < order[y].dev
		})
		fad := make([][][]float64, n)
		for i := 0; i < n; i++ {
			fad[i] = make([][]float64, sc.packets[i])
		}
		for _, k := range order {
			row := make([]float64, net.G())
			for g := range row {
				row[g] = r.RayleighPowerGain()
			}
			fad[k.dev][k.m] = row
		}

		conf, err := RunConfirmed(net, p, a, ConfirmedConfig{
			Config:      cfg,
			MaxAttempts: 1,
			hooks: &confirmedHooks{
				jitter: func(dev, m int) float64 { return jit[dev][m] },
				fading: func(dev, m, k int) float64 { return fad[dev][m][k] },
			},
		})
		if err != nil {
			t.Fatal(err)
		}

		if conf.CollisionLosses != batch.CollisionLosses ||
			conf.CapacityDrops != batch.CapacityDrops ||
			conf.SensitivityMisses != batch.SensitivityMisses {
			t.Errorf("capture=%v counters: confirmed %d/%d/%d != batch %d/%d/%d", capture,
				conf.CollisionLosses, conf.CapacityDrops, conf.SensitivityMisses,
				batch.CollisionLosses, batch.CapacityDrops, batch.SensitivityMisses)
		}
		for i := 0; i < n; i++ {
			if conf.Delivered[i] != batch.Delivered[i] || conf.Attempts[i] != batch.Attempts[i] {
				t.Fatalf("capture=%v device %d: confirmed delivered/attempts %d/%d != batch %d/%d",
					capture, i, conf.Delivered[i], conf.Attempts[i], batch.Delivered[i], batch.Attempts[i])
			}
		}

		// The confirmed trace appends in completion order; sorting by the
		// batch key (start, device) must reproduce the batch trace exactly.
		ctr := append([]PacketRecord(nil), conf.Trace...)
		sort.Slice(ctr, func(x, y int) bool {
			if ctr[x].StartS != ctr[y].StartS {
				return ctr[x].StartS < ctr[y].StartS
			}
			return ctr[x].Device < ctr[y].Device
		})
		if len(ctr) != len(batch.Trace) {
			t.Fatalf("capture=%v trace length %d != batch %d", capture, len(ctr), len(batch.Trace))
		}
		for i := range ctr {
			if ctr[i] != batch.Trace[i] {
				t.Fatalf("capture=%v trace[%d]: confirmed %+v != batch %+v",
					capture, i, ctr[i], batch.Trace[i])
			}
		}
	}
}
