package sim

import (
	"math"
	"testing"

	"eflora/internal/geo"
	"eflora/internal/lora"
	"eflora/internal/model"
	"eflora/internal/rng"
)

func TestConfirmedLoneDeviceNoRetransmissions(t *testing.T) {
	net, p, a := lonePair()
	res, err := RunConfirmed(net, p, a, ConfirmedConfig{Config: Config{PacketsPerDevice: 300, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated[0] != 300 {
		t.Fatalf("generated = %d", res.Generated[0])
	}
	// Near the gateway almost everything succeeds first try.
	if res.PRR[0] < 0.99 {
		t.Errorf("confirmed PRR = %v, want ~1 (retransmissions recover fades)", res.PRR[0])
	}
	if res.Attempts[0] < res.Generated[0] {
		t.Errorf("attempts %d below generated %d", res.Attempts[0], res.Generated[0])
	}
}

func TestConfirmedRetransmissionsRecoverFades(t *testing.T) {
	// A marginal link: unconfirmed PRR well below 1; confirmed delivery
	// must be substantially higher because each packet gets up to 8
	// tries.
	net := &model.Network{
		Devices:  []geo.Point{{X: 2800, Y: 0}},
		Gateways: []geo.Point{{}},
	}
	p := model.DefaultParams()
	a := model.NewAllocation(1, p.Plan)
	a.SF[0] = lora.SF7
	a.TPdBm[0] = 14
	un, err := Run(net, p, a, Config{PacketsPerDevice: 400, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	co, err := RunConfirmed(net, p, a, ConfirmedConfig{Config: Config{PacketsPerDevice: 400, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if un.PRR[0] > 0.9 {
		t.Fatalf("test setup: unconfirmed PRR %v too high to observe retransmissions", un.PRR[0])
	}
	if co.PRR[0] <= un.PRR[0]+0.1 {
		t.Errorf("confirmed PRR %v should exceed unconfirmed %v by a margin", co.PRR[0], un.PRR[0])
	}
	if co.Retransmissions == 0 {
		t.Error("expected retransmissions")
	}
	// Retransmissions cost energy: attempts > generated, energy above
	// the unconfirmed run.
	if co.TxEnergyJ[0] <= un.TxEnergyJ[0] {
		t.Errorf("confirmed TX energy %v should exceed unconfirmed %v", co.TxEnergyJ[0], un.TxEnergyJ[0])
	}
}

func TestConfirmedAbandonsAfterMaxAttempts(t *testing.T) {
	// An out-of-range device abandons every packet after MaxAttempts.
	net := &model.Network{
		Devices:  []geo.Point{{X: 60000, Y: 0}},
		Gateways: []geo.Point{{}},
	}
	p := model.DefaultParams()
	a := model.NewAllocation(1, p.Plan)
	a.SF[0] = lora.SF12
	a.TPdBm[0] = 14
	res, err := RunConfirmed(net, p, a, ConfirmedConfig{
		Config:      Config{PacketsPerDevice: 20, Seed: 5},
		MaxAttempts: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Abandoned != 20 {
		t.Errorf("abandoned = %d, want 20", res.Abandoned)
	}
	if res.Attempts[0] != 60 {
		t.Errorf("attempts = %d, want 20x3", res.Attempts[0])
	}
	if res.PRR[0] != 0 {
		t.Errorf("PRR = %v, want 0", res.PRR[0])
	}
}

func TestConfirmedLoadFeedback(t *testing.T) {
	// Two overloaded same-group devices: retransmissions add load on top
	// of an already collision-heavy channel, so the confirmed run sends
	// strictly more packets and still cannot reach unconfirmed-clean PRR.
	net := &model.Network{
		Devices:  []geo.Point{{X: 100, Y: 0}, {X: -100, Y: 0}},
		Gateways: []geo.Point{{}},
	}
	p := model.DefaultParams()
	p.PacketIntervalS = 6
	a := model.NewAllocation(2, p.Plan)
	for i := range a.SF {
		a.SF[i] = lora.SF12
		a.TPdBm[i] = 14
		a.Channel[i] = 0
	}
	res, err := RunConfirmed(net, p, a, ConfirmedConfig{Config: Config{PacketsPerDevice: 100, Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retransmissions == 0 {
		t.Fatal("expected heavy retransmission load")
	}
	total := res.Attempts[0] + res.Attempts[1]
	if total <= 200 {
		t.Errorf("total attempts %d should exceed generated 200", total)
	}
}

func TestConfirmedDeterministic(t *testing.T) {
	r := rng.New(11)
	net := &model.Network{
		Devices:  geo.UniformDisc(40, 2500, r),
		Gateways: geo.GridGateways(2, 2500),
	}
	p := model.DefaultParams()
	a := model.NewAllocation(40, p.Plan)
	for i := range a.SF {
		a.SF[i] = lora.SF9
		a.TPdBm[i] = 10
		a.Channel[i] = i % 8
	}
	r1, err := RunConfirmed(net, p, a, ConfirmedConfig{Config: Config{PacketsPerDevice: 30, Seed: 13}})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunConfirmed(net, p, a, ConfirmedConfig{Config: Config{PacketsPerDevice: 30, Seed: 13}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Delivered {
		if r1.Delivered[i] != r2.Delivered[i] || r1.Attempts[i] != r2.Attempts[i] {
			t.Fatalf("confirmed run not deterministic at device %d", i)
		}
	}
}

func TestConfirmedPowerViewsCoincide(t *testing.T) {
	net, p, a := lonePair()
	res, err := RunConfirmed(net, p, a, ConfirmedConfig{Config: Config{PacketsPerDevice: 50, Seed: 17}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.AvgPowerW[0]-res.RetxAvgPowerW[0]) > 1e-15 {
		t.Errorf("confirmed AvgPowerW %v != RetxAvgPowerW %v", res.AvgPowerW[0], res.RetxAvgPowerW[0])
	}
}

func TestConfirmedMatchesUnconfirmedFirstAttemptStats(t *testing.T) {
	// With MaxAttempts = 1 the confirmed engine degenerates to one try
	// per packet; aggregate PRR should statistically match the
	// fixed-schedule engine on the same network.
	r := rng.New(19)
	net := &model.Network{
		Devices:  geo.UniformDisc(60, 3000, r),
		Gateways: geo.GridGateways(2, 3000),
	}
	p := model.DefaultParams()
	gains := model.Gains(net, p)
	a := model.NewAllocation(60, p.Plan)
	for i := range a.SF {
		sf, ok := model.MinFeasibleSF(gains, i, 14)
		if !ok {
			sf = lora.MaxSF
		}
		a.SF[i] = sf
		a.TPdBm[i] = 14
		a.Channel[i] = i % 8
	}
	un, err := Run(net, p, a, Config{PacketsPerDevice: 200, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	co, err := RunConfirmed(net, p, a, ConfirmedConfig{
		Config:      Config{PacketsPerDevice: 200, Seed: 23},
		MaxAttempts: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var mu, mc float64
	for i := 0; i < 60; i++ {
		mu += un.PRR[i]
		mc += co.PRR[i]
	}
	mu /= 60
	mc /= 60
	if math.Abs(mu-mc) > 0.05 {
		t.Errorf("mean PRR: unconfirmed %v vs confirmed(1 attempt) %v", mu, mc)
	}
	if co.Retransmissions != 0 {
		t.Errorf("MaxAttempts=1 produced %d retransmissions", co.Retransmissions)
	}
}

func TestConfirmedValidatesInputs(t *testing.T) {
	net, p, a := lonePair()
	bad := p
	bad.PacketIntervalS = 0
	if _, err := RunConfirmed(net, bad, a, ConfirmedConfig{}); err == nil {
		t.Error("invalid params accepted")
	}
	short := model.NewAllocation(5, p.Plan)
	if _, err := RunConfirmed(net, p, short, ConfirmedConfig{}); err == nil {
		t.Error("mis-sized allocation accepted")
	}
}

func TestHalfDuplexAcksCostReceptions(t *testing.T) {
	// A busy single-gateway cell with confirmed traffic: modelling the
	// ACK transmissions must block some uplinks and reduce delivery.
	r := rng.New(31)
	net := &model.Network{
		Devices:  geo.UniformDisc(40, 800, r),
		Gateways: []geo.Point{{}},
	}
	p := model.DefaultParams()
	p.PacketIntervalS = 12
	a := model.NewAllocation(40, p.Plan)
	for i := range a.SF {
		a.SF[i] = lora.SF9
		a.TPdBm[i] = 14
		a.Channel[i] = i % 8
	}
	base, err := RunConfirmed(net, p, a, ConfirmedConfig{
		Config: Config{PacketsPerDevice: 60, Seed: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	hd, err := RunConfirmed(net, p, a, ConfirmedConfig{
		Config:         Config{PacketsPerDevice: 60, Seed: 32},
		HalfDuplexAcks: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if base.AckBlocked != 0 {
		t.Errorf("ACK blocking counted without the flag: %d", base.AckBlocked)
	}
	if hd.AckBlocked == 0 {
		t.Fatal("half-duplex ACKs blocked nothing on a busy cell")
	}
	var dBase, dHD int
	for i := range base.Delivered {
		dBase += base.Delivered[i]
		dHD += hd.Delivered[i]
	}
	if dHD >= dBase {
		t.Errorf("half-duplex delivery %d should be below free-ACK delivery %d", dHD, dBase)
	}
}
