package sim

import (
	"math"
	"testing"

	"eflora/internal/geo"
	"eflora/internal/lora"
	"eflora/internal/model"
	"eflora/internal/rng"
)

func lonePair() (*model.Network, model.Params, model.Allocation) {
	net := &model.Network{
		Devices:  []geo.Point{{X: 300, Y: 0}},
		Gateways: []geo.Point{{}},
	}
	p := model.DefaultParams()
	a := model.NewAllocation(1, p.Plan)
	a.SF[0] = lora.SF7
	a.TPdBm[0] = 14
	return net, p, a
}

func TestLoneDeviceNearGatewayDeliversAlmostEverything(t *testing.T) {
	net, p, a := lonePair()
	res, err := Run(net, p, a, Config{PacketsPerDevice: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts[0] != 500 {
		t.Fatalf("attempts = %d", res.Attempts[0])
	}
	// No contention: only deep Rayleigh fades can lose packets. At 300 m
	// the margin is large, so PRR should be near 1.
	if res.PRR[0] < 0.95 {
		t.Errorf("lone-device PRR = %v, want > 0.95 (%s)", res.PRR[0], res.Summary())
	}
	if res.CollisionLosses != 0 {
		t.Errorf("lone device cannot collide, got %d collisions", res.CollisionLosses)
	}
	if res.EE[0] <= 0 {
		t.Errorf("EE = %v", res.EE[0])
	}
}

func TestOutOfRangeDeviceDeliversNothing(t *testing.T) {
	net := &model.Network{
		Devices:  []geo.Point{{X: 80000, Y: 0}},
		Gateways: []geo.Point{{}},
	}
	p := model.DefaultParams()
	a := model.NewAllocation(1, p.Plan)
	a.SF[0] = lora.SF12
	a.TPdBm[0] = p.Plan.MaxTxPowerDBm
	res, err := Run(net, p, a, Config{PacketsPerDevice: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered[0] != 0 {
		t.Errorf("80 km device delivered %d packets", res.Delivered[0])
	}
	if res.SensitivityMisses == 0 {
		t.Error("expected sensitivity misses to be counted")
	}
	if res.EE[0] != 0 {
		t.Errorf("EE of dead link = %v, want 0", res.EE[0])
	}
}

func TestDeterministicForSameSeed(t *testing.T) {
	r := rng.New(3)
	net := &model.Network{
		Devices:  geo.UniformDisc(50, 2000, r),
		Gateways: geo.GridGateways(2, 2000),
	}
	p := model.DefaultParams()
	a := model.NewAllocation(50, p.Plan)
	for i := range a.SF {
		a.SF[i] = lora.SF8
		a.TPdBm[i] = 12
		a.Channel[i] = i % 8
	}
	r1, err := Run(net, p, a, Config{PacketsPerDevice: 40, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(net, p, a, Config{PacketsPerDevice: 40, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Delivered {
		if r1.Delivered[i] != r2.Delivered[i] {
			t.Fatalf("same seed diverged at device %d", i)
		}
	}
	r3, err := Run(net, p, a, Config{PacketsPerDevice: 40, Seed: 78})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range r1.Delivered {
		if r1.Delivered[i] != r3.Delivered[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical outcomes")
	}
}

func TestCollisionsDestroyCoSFCoChannelOverlap(t *testing.T) {
	// Two devices, same SF and channel, reporting so often that their
	// packets overlap frequently: PRR must drop well below the lone case.
	net := &model.Network{
		Devices:  []geo.Point{{X: 100, Y: 0}, {X: -100, Y: 0}},
		Gateways: []geo.Point{{}},
	}
	p := model.DefaultParams()
	p.PacketIntervalS = 2 // ToA(SF12) ~1.8 s: near-certain overlap
	a := model.NewAllocation(2, p.Plan)
	for i := range a.SF {
		a.SF[i] = lora.SF12
		a.TPdBm[i] = 14
		a.Channel[i] = 0
	}
	res, err := Run(net, p, a, Config{PacketsPerDevice: 200, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.CollisionLosses == 0 {
		t.Fatal("expected collisions")
	}
	if res.PRR[0] > 0.5 || res.PRR[1] > 0.5 {
		t.Errorf("PRR = %v, %v; expected heavy collision losses (%s)",
			res.PRR[0], res.PRR[1], res.Summary())
	}
}

func TestDifferentChannelsDoNotCollide(t *testing.T) {
	net := &model.Network{
		Devices:  []geo.Point{{X: 100, Y: 0}, {X: -100, Y: 0}},
		Gateways: []geo.Point{{}},
	}
	p := model.DefaultParams()
	p.PacketIntervalS = 2
	a := model.NewAllocation(2, p.Plan)
	for i := range a.SF {
		a.SF[i] = lora.SF12
		a.TPdBm[i] = 14
		a.Channel[i] = i // distinct channels
	}
	res, err := Run(net, p, a, Config{PacketsPerDevice: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.CollisionLosses != 0 {
		t.Errorf("cross-channel packets collided %d times", res.CollisionLosses)
	}
}

func TestDifferentSFsDoNotCollide(t *testing.T) {
	net := &model.Network{
		Devices:  []geo.Point{{X: 100, Y: 0}, {X: -100, Y: 0}},
		Gateways: []geo.Point{{}},
	}
	p := model.DefaultParams()
	p.PacketIntervalS = 2
	a := model.NewAllocation(2, p.Plan)
	a.SF[0], a.SF[1] = lora.SF11, lora.SF12
	a.TPdBm[0], a.TPdBm[1] = 14, 14
	res, err := Run(net, p, a, Config{PacketsPerDevice: 200, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.CollisionLosses != 0 {
		t.Errorf("orthogonal SFs collided %d times", res.CollisionLosses)
	}
}

func TestCaptureRescuesStrongerPacket(t *testing.T) {
	// A very close device vs a far device, same SF/channel, chatty: with
	// capture the close one survives collisions; without, both die.
	net := &model.Network{
		Devices:  []geo.Point{{X: 50, Y: 0}, {X: 2500, Y: 0}},
		Gateways: []geo.Point{{}},
	}
	p := model.DefaultParams()
	p.PacketIntervalS = 2
	a := model.NewAllocation(2, p.Plan)
	for i := range a.SF {
		a.SF[i] = lora.SF12
		a.TPdBm[i] = 14
		a.Channel[i] = 0
	}
	noCap, err := Run(net, p, a, Config{PacketsPerDevice: 300, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	withCap, err := Run(net, p, a, Config{PacketsPerDevice: 300, Seed: 7, Capture: true})
	if err != nil {
		t.Fatal(err)
	}
	if withCap.PRR[0] <= noCap.PRR[0] {
		t.Errorf("capture should rescue the strong device: %v vs %v",
			withCap.PRR[0], noCap.PRR[0])
	}
}

func TestGatewayCapacityLimitsConcurrentLocks(t *testing.T) {
	// 30 chatty devices on distinct (SF, channel) pairs would be fully
	// orthogonal, but a capacity-2 gateway must drop most of them.
	r := rng.New(8)
	net := &model.Network{
		Devices:  geo.UniformDisc(30, 500, r),
		Gateways: []geo.Point{{}},
	}
	p := model.DefaultParams()
	p.PacketIntervalS = 10
	p.GatewayCapacity = 2
	a := model.NewAllocation(30, p.Plan)
	for i := range a.SF {
		a.SF[i] = lora.SF10 + lora.SF(i%3) // long packets
		a.TPdBm[i] = 14
		a.Channel[i] = i % 8
	}
	res, err := Run(net, p, a, Config{PacketsPerDevice: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.CapacityDrops == 0 {
		t.Errorf("expected capacity drops at a 2-demodulator gateway (%s)", res.Summary())
	}
	big := p
	big.GatewayCapacity = 1000
	resBig, err := Run(net, big, a, Config{PacketsPerDevice: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if resBig.CapacityDrops != 0 {
		t.Errorf("huge capacity still dropped %d", resBig.CapacityDrops)
	}
	sumSmall, sumBig := 0, 0
	for i := range res.Delivered {
		sumSmall += res.Delivered[i]
		sumBig += resBig.Delivered[i]
	}
	if sumSmall >= sumBig {
		t.Errorf("capacity-2 delivered %d >= capacity-1000 delivered %d", sumSmall, sumBig)
	}
}

func TestOverCapacityTransmissionStillCollides(t *testing.T) {
	// Two chatty same-SF same-channel devices at a 1-demodulator gateway:
	// whenever their packets overlap, the later one finds no free
	// demodulator — but its RF energy must still destroy the locked
	// reception. A capacity check that short-circuits the collision scan
	// would instead let the locked packet sail through and report an
	// inflated PRR.
	net := &model.Network{
		Devices:  []geo.Point{{X: 100, Y: 0}, {X: -100, Y: 0}},
		Gateways: []geo.Point{{}},
	}
	p := model.DefaultParams()
	p.PacketIntervalS = 2 // ToA(SF12) ~1.8 s: near-certain overlap
	p.GatewayCapacity = 1
	a := model.NewAllocation(2, p.Plan)
	for i := range a.SF {
		a.SF[i] = lora.SF12
		a.TPdBm[i] = 14
		a.Channel[i] = 0
	}
	res, err := Run(net, p, a, Config{PacketsPerDevice: 200, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.CapacityDrops == 0 {
		t.Fatalf("expected capacity drops at a 1-demodulator gateway (%s)", res.Summary())
	}
	if res.CollisionLosses == 0 {
		t.Fatalf("over-capacity transmissions must still collide with locked receptions (%s)", res.Summary())
	}
	if res.PRR[0] > 0.5 || res.PRR[1] > 0.5 {
		t.Errorf("PRR = %v, %v; a 1-demodulator gateway must not outperform the collision channel (%s)",
			res.PRR[0], res.PRR[1], res.Summary())
	}
}

func TestCaptureThresholdZeroIsNotReplacedByDefault(t *testing.T) {
	z := 0.0
	cfg := (Config{CaptureThresholdDB: &z}).withDefaults()
	if *cfg.CaptureThresholdDB != 0 {
		t.Fatalf("explicit 0 dB threshold rewritten to %v", *cfg.CaptureThresholdDB)
	}
	def := (Config{}).withDefaults()
	if *def.CaptureThresholdDB != DefaultCaptureThresholdDB {
		t.Fatalf("unset threshold = %v, want %v", *def.CaptureThresholdDB, DefaultCaptureThresholdDB)
	}
}

func TestZeroCaptureThresholdCapturesOnAnyAdvantage(t *testing.T) {
	// Two devices at comparable distances: their received-power ratio is
	// usually inside (0, 6) dB, where a 6 dB threshold destroys both
	// packets but a 0 dB (strongest-wins) threshold always rescues one.
	net := &model.Network{
		Devices:  []geo.Point{{X: 100, Y: 0}, {X: -150, Y: 0}},
		Gateways: []geo.Point{{}},
	}
	p := model.DefaultParams()
	p.PacketIntervalS = 2
	a := model.NewAllocation(2, p.Plan)
	for i := range a.SF {
		a.SF[i] = lora.SF12
		a.TPdBm[i] = 14
		a.Channel[i] = 0
	}
	run := func(th *float64) int {
		res, err := Run(net, p, a, Config{
			PacketsPerDevice: 300, Seed: 7, Capture: true, CaptureThresholdDB: th,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Delivered[0] + res.Delivered[1]
	}
	zero := 0.0
	if dz, d6 := run(&zero), run(nil); dz <= d6 {
		t.Errorf("0 dB capture delivered %d <= 6 dB capture %d; strongest-wins must rescue more overlaps", dz, d6)
	}
}

func TestSecondGatewayImprovesDelivery(t *testing.T) {
	r := rng.New(10)
	devices := geo.UniformDisc(60, 3500, r)
	p := model.DefaultParams()
	run := func(gws []geo.Point) float64 {
		net := &model.Network{Devices: devices, Gateways: gws}
		a := model.NewAllocation(60, p.Plan)
		for i := range a.SF {
			a.SF[i] = lora.SF9
			a.TPdBm[i] = 8
			a.Channel[i] = i % 8
		}
		res, err := Run(net, p, a, Config{PacketsPerDevice: 60, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, d := range res.Delivered {
			total += d
		}
		return float64(total)
	}
	one := run([]geo.Point{{X: -1500, Y: 0}})
	two := run([]geo.Point{{X: -1500, Y: 0}, {X: 1500, Y: 0}})
	if two <= one {
		t.Errorf("two gateways delivered %v <= one gateway %v", two, one)
	}
}

func TestEnergyAccounting(t *testing.T) {
	net, p, a := lonePair()
	res, err := Run(net, p, a, Config{PacketsPerDevice: 100, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	toa := p.TimeOnAir(a.SF[0])
	wantTx := p.Profile.TransmissionEnergy(a.TPdBm[0], toa) * 100
	if math.Abs(res.TxEnergyJ[0]-wantTx) > 1e-9 {
		t.Errorf("TxEnergyJ = %v, want %v", res.TxEnergyJ[0], wantTx)
	}
	if res.TotalEnergyJ[0] <= res.TxEnergyJ[0] {
		t.Error("total energy should include sleep on top of TX")
	}
	if res.AvgPowerW[0] <= 0 || res.SimTimeS <= 0 {
		t.Errorf("AvgPower %v, SimTime %v", res.AvgPowerW[0], res.SimTimeS)
	}
	// EE consistency: delivered bits / tx energy.
	wantEE := p.AppPayloadBits() * float64(res.Delivered[0]) / res.TxEnergyJ[0]
	if math.Abs(res.EE[0]-wantEE) > 1e-9 {
		t.Errorf("EE = %v, want %v", res.EE[0], wantEE)
	}
}

func TestRunValidatesInputs(t *testing.T) {
	net, p, a := lonePair()
	bad := p
	bad.PacketIntervalS = 0
	if _, err := Run(net, bad, a, Config{}); err == nil {
		t.Error("invalid params accepted")
	}
	short := model.NewAllocation(5, p.Plan)
	if _, err := Run(net, p, short, Config{}); err == nil {
		t.Error("mis-sized allocation accepted")
	}
	empty := &model.Network{}
	if _, err := Run(empty, p, a, Config{}); err == nil {
		t.Error("empty network accepted")
	}
}

func TestSimulatorAgreesWithModelOnPRRShape(t *testing.T) {
	// Model vs simulator cross-validation: per-device PRR from the
	// analytical model should track simulated PRR within a loose
	// tolerance on an interference-light network.
	r := rng.New(13)
	net := &model.Network{
		Devices:  geo.UniformDisc(40, 2500, r),
		Gateways: geo.GridGateways(2, 2500),
	}
	p := model.DefaultParams()
	a := model.NewAllocation(40, p.Plan)
	gains := model.Gains(net, p)
	for i := range a.SF {
		sf, ok := model.MinFeasibleSF(gains, i, 14)
		if !ok {
			sf = lora.MaxSF
		}
		a.SF[i] = sf
		a.TPdBm[i] = 14
		a.Channel[i] = i % 8
	}
	ev, err := model.NewEvaluator(net, p, a, model.ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(net, p, a, Config{PacketsPerDevice: 300, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	// Paper Eq. 10 multiplies P{SNR>=th} and P{rx>=ss} as if independent,
	// while physically both apply to the same fading draw; the model is
	// therefore systematically a bit pessimistic. Require agreement of
	// the mean within that bias and a strong positive correlation of the
	// per-device values.
	var sumModel, sumSim float64
	mPRR := make([]float64, net.N())
	for i := 0; i < net.N(); i++ {
		mPRR[i] = ev.PRR(i)
		sumModel += mPRR[i]
		sumSim += res.PRR[i]
	}
	meanModel, meanSim := sumModel/40, sumSim/40
	if math.Abs(meanModel-meanSim) > 0.3 {
		t.Errorf("mean PRR: model %v vs sim %v", meanModel, meanSim)
	}
	if meanModel > meanSim+0.05 {
		t.Errorf("model should not be optimistic vs sim: %v > %v", meanModel, meanSim)
	}
	var cov, varM, varS float64
	for i := 0; i < net.N(); i++ {
		dm, ds := mPRR[i]-meanModel, res.PRR[i]-meanSim
		cov += dm * ds
		varM += dm * dm
		varS += ds * ds
	}
	if varM > 0 && varS > 0 {
		corr := cov / math.Sqrt(varM*varS)
		if corr < 0.5 {
			t.Errorf("model-vs-sim PRR correlation = %v, want > 0.5", corr)
		}
	}
}
