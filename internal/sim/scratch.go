package sim

import (
	"eflora/internal/engine"
	"eflora/internal/rng"
)

// Scratch holds every buffer a Run or RunConfirmed invocation needs, so
// repeated runs — the repeated packet-level trials behind each figure —
// reuse one arena instead of re-allocating the schedule, the fading
// matrix, the per-gateway replay buffers and the Result slices each
// time. A zero Scratch is ready to use; buffers grow to the high-water
// mark of the runs they serve and stay there (the slab.Grow contract).
//
// Ownership contract: the *Result (or *ConfirmedResult) returned by a
// run with a Scratch aliases the scratch's buffers. It is valid until
// the next run with the same scratch; callers that keep per-device
// slices across runs must copy them first. A Scratch serves one run at a
// time (gateway replay inside that run still fans out across cores);
// concurrent trials need one Scratch each, e.g. from a sync.Pool.
type Scratch struct {
	// Per-device schedule-building buffers.
	toa, tpMW, interval []float64
	packets             []int

	// The shared transmission schedule in struct-of-arrays form (the
	// columnar window the batch kernel consumes), the unsorted
	// schedule-build columns plus their (start, dev) argsort
	// permutation, and the flattened per-transmission×gateway fading
	// matrix (row t, column k at fading[t*g+k]). The streaming path
	// leaves all of these untouched — that is the whole point — and
	// uses the window buffers below instead.
	win    engine.Window
	ustart []float64
	udev   []int32
	perm   []int32
	fading []float64

	// Per-gateway replay state, one slot per gateway; each slot's
	// buffers are owned by that gateway's goroutine during the fan-out.
	replays []gwReplay

	// Network-server merge buffers.
	delivered []bool
	outcome   []Outcome
	outGw     []int

	// Backing arrays for the optional Result fields, kept here because
	// Run nils the Result fields out when the options are off.
	trace  []PacketRecord
	maxSNR []float64

	res Result

	// Streaming-mode state: per-device generator streams (an RNG
	// snapshot, the next emission and a merge heap) plus the current
	// window's transmission columns/fading and the pending-verdict
	// ring. All O(devices + active window).
	devRng    []rng.RNG
	nextStart []float64
	nextM     []int
	devHeap   []int32
	wwin      engine.Window
	wfading   []float64
	pend      []pendTx

	// Confirmed-path event-loop state (RunConfirmed).
	crun confirmedRun
}
