package sim

import (
	"flag"
	"fmt"
	"strings"
	"testing"

	"eflora/internal/geo"
	"eflora/internal/golden"
	"eflora/internal/lora"
	"eflora/internal/model"
	"eflora/internal/rng"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenNetwork builds the fixed topology and allocation the golden
// digests are pinned to.
func goldenNetwork(n, g int) (*model.Network, model.Params, model.Allocation) {
	r := rng.New(42)
	net := &model.Network{
		Devices:  geo.UniformDisc(n, 4000, r),
		Gateways: geo.GridGateways(g, 4000),
	}
	p := model.DefaultParams()
	// Duty-cycle traffic on two channels puts the run deep into the
	// collision-limited regime, so the golden digests exercise the
	// collision scan, the capture rule and the demodulator-capacity path.
	p.TrafficDutyCycle = 0.05
	gains := model.Gains(net, p)
	a := model.NewAllocation(n, p.Plan)
	tpLevels := p.Plan.TxPowerLevels()
	for i := 0; i < n; i++ {
		sf, ok := model.MinFeasibleSF(gains, i, p.Plan.MaxTxPowerDBm)
		if !ok {
			sf = lora.MaxSF
		}
		a.SF[i] = sf
		a.TPdBm[i] = tpLevels[i%len(tpLevels)]
		a.Channel[i] = i % 2
	}
	return net, p, a
}

// resultDigest serializes every field of a Result exactly (bit-level for
// floats) and hashes it.
func resultDigest(res *Result) string {
	trace := make([]string, len(res.Trace))
	for i, pr := range res.Trace {
		trace[i] = fmt.Sprintf("%d,%s,%d,%d", pr.Device, golden.Float(pr.StartS), pr.Outcome, pr.Gateway)
	}
	return golden.Digest(
		golden.Ints(res.Attempts),
		golden.Ints(res.Delivered),
		golden.Floats(res.PRR),
		golden.Floats(res.TxEnergyJ),
		golden.Floats(res.TotalEnergyJ),
		golden.Floats(res.EE),
		golden.Floats(res.AvgPowerW),
		golden.Floats(res.RetxAvgPowerW),
		golden.Float(res.SimTimeS),
		fmt.Sprintf("%d %d %d", res.CollisionLosses, res.CapacityDrops, res.SensitivityMisses),
		strings.Join(trace, "\n"),
		golden.Floats(res.MaxSNRdB),
	)
}

// TestGoldenDeterminism pins the simulator's full output — every
// per-device statistic, counter and trace record — to digests checked
// into testdata/. It proves two properties at once: results are
// bit-identical at Parallelism 1 and 0 (all CPUs), and hot-path
// refactors cannot change outputs without failing this test.
func TestGoldenDeterminism(t *testing.T) {
	net, p, a := goldenNetwork(120, 4)
	variants := []struct {
		name string
		cfg  Config
	}{
		{"base", Config{PacketsPerDevice: 12, Seed: 7, Trace: true, MeasureSNR: true}},
		{"capture", Config{PacketsPerDevice: 12, Seed: 7, Capture: true, Trace: true, MeasureSNR: true}},
	}
	var out strings.Builder
	for _, v := range variants {
		var digests []string
		for _, par := range []int{1, 0} {
			cfg := v.cfg
			cfg.Parallelism = par
			res, err := Run(net, p, a, cfg)
			if err != nil {
				t.Fatalf("%s parallelism=%d: %v", v.name, par, err)
			}
			digests = append(digests, resultDigest(res))
		}
		if digests[0] != digests[1] {
			t.Errorf("%s: Parallelism=1 digest %s != Parallelism=0 digest %s",
				v.name, digests[0], digests[1])
		}
		fmt.Fprintf(&out, "%s %s\n", v.name, digests[0])
	}
	golden.Check(t, "testdata/golden_determinism.txt", out.String(), *update)
}

// TestGoldenDeterminismConfirmed pins the confirmed-traffic engine the
// same way (it is sequential, so only one digest per variant).
func TestGoldenDeterminismConfirmed(t *testing.T) {
	net, p, a := goldenNetwork(60, 2)
	res, err := RunConfirmed(net, p, a, ConfirmedConfig{
		Config:         Config{PacketsPerDevice: 8, Seed: 11},
		MaxAttempts:    4,
		HalfDuplexAcks: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := golden.Digest(
		resultDigest(&res.Result),
		golden.Ints(res.Generated),
		fmt.Sprintf("%d %d %d", res.Retransmissions, res.Abandoned, res.AckBlocked),
	)
	golden.Check(t, "testdata/golden_confirmed.txt", "confirmed "+d+"\n", *update)
}
