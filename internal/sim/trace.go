package sim

import (
	"fmt"
	"io"
	"strconv"
)

// Outcome classifies what happened to one transmitted packet, with the
// most informative cause across gateways: a packet heard by two gateways
// and collided at one while below sensitivity at the other records
// OutcomeCollided.
type Outcome uint8

// Packet outcomes, ordered by reporting precedence (higher wins when a
// packet meets different fates at different gateways).
const (
	// OutcomeNoSignal: below sensitivity at every gateway.
	OutcomeNoSignal Outcome = iota
	// OutcomeCapacity: some gateway heard it but had no free demodulator.
	OutcomeCapacity
	// OutcomeFaded: locked at a gateway but the fading draw left the SNR
	// below the decoding threshold.
	OutcomeFaded
	// OutcomeCollided: destroyed by a same-SF same-channel overlap.
	OutcomeCollided
	// OutcomeDelivered: decoded by at least one gateway.
	OutcomeDelivered
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeDelivered:
		return "delivered"
	case OutcomeCollided:
		return "collided"
	case OutcomeFaded:
		return "faded"
	case OutcomeCapacity:
		return "capacity"
	case OutcomeNoSignal:
		return "no-signal"
	}
	return fmt.Sprintf("outcome(%d)", uint8(o))
}

// PacketRecord traces one transmission.
type PacketRecord struct {
	// Device index and transmission start time.
	Device int
	StartS float64
	// Outcome per the precedence rules; Gateway is the decoding gateway
	// for delivered packets, -1 otherwise.
	Outcome Outcome
	Gateway int
}

// WriteTraceCSV renders packet records as CSV (device,start_s,outcome,gateway).
func WriteTraceCSV(w io.Writer, records []PacketRecord) error {
	if _, err := io.WriteString(w, "device,start_s,outcome,gateway\n"); err != nil {
		return err
	}
	for _, r := range records {
		line := strconv.Itoa(r.Device) + "," +
			strconv.FormatFloat(r.StartS, 'f', 3, 64) + "," +
			r.Outcome.String() + "," +
			strconv.Itoa(r.Gateway) + "\n"
		if _, err := io.WriteString(w, line); err != nil {
			return err
		}
	}
	return nil
}

// OutcomeCounts tallies records by outcome.
func OutcomeCounts(records []PacketRecord) map[Outcome]int {
	m := make(map[Outcome]int)
	for _, r := range records {
		m[r.Outcome]++
	}
	return m
}
