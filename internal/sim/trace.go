package sim

import (
	"io"
	"strconv"

	"eflora/internal/engine"
)

// Outcome classifies what happened to one transmitted packet, with the
// most informative cause across gateways: a packet heard by two gateways
// and collided at one while below sensitivity at the other records
// OutcomeCollided. The type (and its pinned numeric values) now lives in
// the shared receiver engine; the alias keeps this package's API and the
// golden digests unchanged.
type Outcome = engine.Outcome

// Packet outcomes, ordered by reporting precedence (higher wins when a
// packet meets different fates at different gateways).
const (
	// OutcomeNoSignal: below sensitivity at every gateway.
	OutcomeNoSignal = engine.OutcomeNoSignal
	// OutcomeCapacity: some gateway heard it but had no free demodulator.
	OutcomeCapacity = engine.OutcomeCapacity
	// OutcomeFaded: locked at a gateway but the fading draw left the SNR
	// below the decoding threshold.
	OutcomeFaded = engine.OutcomeFaded
	// OutcomeCollided: destroyed by a same-SF same-channel overlap.
	OutcomeCollided = engine.OutcomeCollided
	// OutcomeDelivered: decoded by at least one gateway.
	OutcomeDelivered = engine.OutcomeDelivered
)

// PacketRecord traces one transmission.
type PacketRecord struct {
	// Device index and transmission start time.
	Device int
	StartS float64
	// Outcome per the precedence rules; Gateway is the decoding gateway
	// for delivered packets, -1 otherwise.
	Outcome Outcome
	Gateway int
}

// WriteTraceCSV renders packet records as CSV (device,start_s,outcome,gateway).
func WriteTraceCSV(w io.Writer, records []PacketRecord) error {
	if _, err := io.WriteString(w, "device,start_s,outcome,gateway\n"); err != nil {
		return err
	}
	for _, r := range records {
		line := strconv.Itoa(r.Device) + "," +
			strconv.FormatFloat(r.StartS, 'f', 3, 64) + "," +
			r.Outcome.String() + "," +
			strconv.Itoa(r.Gateway) + "\n"
		if _, err := io.WriteString(w, line); err != nil {
			return err
		}
	}
	return nil
}

// OutcomeCounts tallies records by outcome.
func OutcomeCounts(records []PacketRecord) map[Outcome]int {
	m := make(map[Outcome]int)
	for _, r := range records {
		m[r.Outcome]++
	}
	return m
}
