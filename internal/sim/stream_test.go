package sim

import (
	"testing"

	"eflora/internal/model"
)

// streamMaxToA is the longest time-on-air in the allocation — the window
// sizes below bracket it so the equality tests cover windows smaller than
// a single transmission (every packet straddles a boundary) as well as
// windows holding many.
func streamMaxToA(p model.Params, a model.Allocation) float64 {
	max := 0.0
	for i := range a.SF {
		if toa := p.TimeOnAir(a.SF[i]); toa > max {
			max = toa
		}
	}
	return max
}

// TestStreamingMatchesBatch proves the tentpole bit-identity claim: the
// time-windowed streaming path reproduces the batch path's full digest —
// every per-device statistic, counter, trace record and SNR measurement —
// at every window size, for both collision rules, at any parallelism.
func TestStreamingMatchesBatch(t *testing.T) {
	net, p, a := goldenNetwork(120, 4)
	maxToA := streamMaxToA(p, a)
	variants := []struct {
		name string
		cfg  Config
	}{
		{"base", Config{PacketsPerDevice: 12, Seed: 7, Trace: true, MeasureSNR: true}},
		{"capture", Config{PacketsPerDevice: 12, Seed: 7, Capture: true, Trace: true, MeasureSNR: true}},
	}
	for _, v := range variants {
		batchCfg := v.cfg
		batchCfg.Parallelism = 1
		batch, err := Run(net, p, a, batchCfg)
		if err != nil {
			t.Fatalf("%s batch: %v", v.name, err)
		}
		want := resultDigest(batch)
		for _, win := range []float64{0.5 * maxToA, 3 * maxToA, 60} {
			for _, par := range []int{1, 0} {
				cfg := v.cfg
				cfg.Parallelism = par
				cfg.StreamWindowS = win
				res, err := Run(net, p, a, cfg)
				if err != nil {
					t.Fatalf("%s window=%g parallelism=%d: %v", v.name, win, par, err)
				}
				if got := resultDigest(res); got != want {
					t.Errorf("%s window=%g parallelism=%d: digest %s != batch %s",
						v.name, win, par, got, want)
				}
			}
		}
	}
}

// TestStreamingWindowMemory pins the memory claim: a streaming run never
// touches the whole-schedule buffers (txs, fading) and its window buffers
// stay far below the total transmission count.
func TestStreamingWindowMemory(t *testing.T) {
	net, p, a := goldenNetwork(120, 4)
	sc := &Scratch{}
	cfg := Config{PacketsPerDevice: 12, Seed: 7, Parallelism: 1, Scratch: sc}
	cfg.StreamWindowS = 0.5 * streamMaxToA(p, a)
	if _, err := Run(net, p, a, cfg); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, m := range sc.packets {
		total += m
	}
	if cap(sc.win.StartS) != 0 || cap(sc.fading) != 0 {
		t.Errorf("streaming run materialized the batch schedule: cap(win)=%d cap(fading)=%d",
			cap(sc.win.StartS), cap(sc.fading))
	}
	if lim := total / 10; cap(sc.wwin.StartS) > lim || cap(sc.pend) > lim {
		t.Errorf("window buffers not O(window): cap(wwin)=%d cap(pend)=%d, total=%d",
			cap(sc.wwin.StartS), cap(sc.pend), total)
	}
}

// TestStreamingRejectsNothingNewOnScratchReuse re-runs streaming on a warm
// scratch and checks the digest is stable — buffer reuse must not leak
// state across runs.
func TestStreamingScratchReuseIsStable(t *testing.T) {
	net, p, a := goldenNetwork(60, 2)
	sc := &Scratch{}
	cfg := Config{PacketsPerDevice: 8, Seed: 3, Trace: true, MeasureSNR: true,
		Parallelism: 1, Scratch: sc, StreamWindowS: 45}
	first, err := Run(net, p, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := resultDigest(first)
	for i := 0; i < 3; i++ {
		res, err := Run(net, p, a, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := resultDigest(res); got != want {
			t.Fatalf("run %d on warm scratch: digest %s != %s", i+2, got, want)
		}
	}
}

// BenchmarkRunStreaming measures the streaming path on a warm scratch and
// asserts — every benchmark iteration — that the resident schedule
// buffers stay O(window), so a regression that silently re-materializes
// the schedule fails the benchmark rather than just slowing it down.
func BenchmarkRunStreaming(b *testing.B) {
	net, p, a := goldenNetwork(120, 4)
	sc := &Scratch{}
	cfg := Config{PacketsPerDevice: 12, Seed: 7, Parallelism: 1, Scratch: sc,
		StreamWindowS: 3 * streamMaxToA(p, a)}
	if _, err := Run(net, p, a, cfg); err != nil {
		b.Fatal(err)
	}
	total := 0
	for _, m := range sc.packets {
		total += m
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(net, p, a, cfg); err != nil {
			b.Fatal(err)
		}
		if cap(sc.win.StartS) != 0 || cap(sc.wwin.StartS) > total/4 {
			b.Fatalf("streaming memory not O(window): cap(win)=%d cap(wwin)=%d total=%d",
				cap(sc.win.StartS), cap(sc.wwin.StartS), total)
		}
	}
}
