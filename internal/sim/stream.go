package sim

import (
	"math"

	"eflora/internal/engine"
	"eflora/internal/lora"
	"eflora/internal/model"
	"eflora/internal/par"
	"eflora/internal/rng"
	"eflora/internal/slab"
)

// The streaming path replays exactly the batch schedule without ever
// materializing it. Two observations make that possible:
//
//  1. A device's transmission starts strictly increase (the jitter stays
//     below one reporting interval), so the batch schedule — all
//     transmissions sorted by (start, device) — is the n-way merge of n
//     sorted per-device streams. One RNG snapshot per device replays that
//     device's jitter draws lazily, and a merge heap yields transmissions
//     one at a time in the batch order; the master RNG skips the jitter
//     block up front and then draws each transmission's fading at the
//     moment the merge emits it, which is the batch fading order.
//  2. Completing a reception at a window boundary W instead of at the
//     next arrival cannot change its verdict: any later arrival starts at
//     or after W, hence at or after the reception's end, and therefore
//     never overlaps it. So in-flight receptions carry over inside the
//     per-gateway engine state and everything ending at or before W is
//     flushed, letting the window's transmission buffer be recycled.
//
// Verdicts are merged in ascending gateway order into a pending ring
// ordered by token (= batch schedule order) and resolved from the head,
// so counters, per-device deliveries, traces and SNR measurements come
// out bit-identical to the batch path at any window size.

// pendTx is one transmission whose cross-gateway verdict is still being
// assembled: the streaming counterpart of the batch path's
// delivered/outcome/outGw merge arrays, bounded by the active window
// instead of the schedule length.
type pendTx struct {
	dev       int
	outGw     int
	start     float64
	end       float64
	outcome   Outcome
	delivered bool
}

// scheduleSource streams the batch transmission schedule in ascending
// (start, device) order with O(devices) state, implementing
// engine.Source. Tokens are consecutive from 0.
type scheduleSource struct {
	sc   *Scratch
	sf   []lora.SF
	ch   []int
	next int
}

// newScheduleSource positions the per-device jitter streams and the
// master RNG. After it returns, r sits exactly where the batch path
// starts drawing fading.
func newScheduleSource(sc *Scratch, a model.Allocation, r *rng.RNG, n int) *scheduleSource {
	devRng := slab.Grow(sc.devRng, n)
	nextStart := slab.Grow(sc.nextStart, n)
	nextM := slab.GrowZero(sc.nextM, n)
	sc.devRng, sc.nextStart, sc.nextM = devRng, nextStart, nextM
	for i := 0; i < n; i++ {
		devRng[i] = *r
		for m := 0; m < sc.packets[i]; m++ {
			r.Float64()
		}
	}
	s := &scheduleSource{sc: sc, sf: a.SF, ch: a.Channel}
	h := sc.devHeap[:0]
	for i := 0; i < n; i++ {
		nextStart[i] = devRng[i].Float64() * s.slack(i)
		h = append(h, int32(i))
		s.up(h, len(h)-1)
	}
	sc.devHeap = h
	return s
}

// slack is the jitter span: a device never overlaps its own next packet.
func (s *scheduleSource) slack(i int) float64 {
	sl := s.sc.interval[i] - s.sc.toa[i]
	if sl < 0 {
		sl = 0
	}
	return sl
}

// less orders the merge heap by (next start, device) — the batch sort key.
func (s *scheduleSource) less(a, b int32) bool {
	sa, sb := s.sc.nextStart[a], s.sc.nextStart[b]
	if sa != sb {
		return sa < sb
	}
	return a < b
}

func (s *scheduleSource) up(h []int32, j int) {
	for j > 0 {
		i := (j - 1) / 2
		if !s.less(h[j], h[i]) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (s *scheduleSource) down(h []int32, i, n int) {
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j+1 < n && s.less(h[j+1], h[j]) {
			j++
		}
		if !s.less(h[j], h[i]) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// NextWindow implements engine.Source.
//
//eflora:hotpath
func (s *scheduleSource) NextWindow(untilS float64, w *engine.Window) bool {
	sc := s.sc
	w.Reset(s.next)
	h := sc.devHeap
	for len(h) > 0 && sc.nextStart[h[0]] < untilS {
		i := h[0]
		start := sc.nextStart[i]
		w.Append(int(i), s.sf[i], s.ch[i], start, start+sc.toa[i], sc.tpMW[i])
		s.next++
		sc.nextM[i]++
		if m := sc.nextM[i]; m < sc.packets[i] {
			// Per-device starts strictly increase, so a sift-down
			// restores the heap after the key grows.
			sc.nextStart[i] = float64(m)*sc.interval[i] + sc.devRng[i].Float64()*s.slack(int(i))
			s.down(h, 0, len(h))
		} else {
			n := len(h) - 1
			h[0] = h[n]
			h = h[:n]
			s.down(h, 0, n)
		}
	}
	sc.devHeap = h
	return len(h) > 0
}

// runStreaming is Run's time-windowed mode: same validation, same
// results, O(devices + active window) resident schedule memory.
//
//eflora:hotpath
func runStreaming(net *model.Network, p model.Params, a model.Allocation, cfg Config) (*Result, error) {
	n, g := net.N(), net.G()
	r := rng.New(cfg.Seed)
	sc := cfg.Scratch
	if sc == nil {
		sc = new(Scratch)
	}

	gains := model.Gains(net, p)
	noiseMW := lora.DBmToMilliwatts(p.NoiseDBm)
	captureLin := lora.DBToLinear(*cfg.CaptureThresholdDB)
	engCfg := engineConfig(p, captureLin, noiseMW, cfg.Capture, false)

	simEnd, _ := deviceSchedule(sc, net, p, a, cfg.PacketsPerDevice)
	res := initResult(sc, n, simEnd, cfg.MeasureSNR)
	if cfg.Trace {
		sc.trace = sc.trace[:0]
	}

	replays := slab.Grow(sc.replays, g)
	sc.replays = replays
	for k := range replays {
		replays[k].eng.Reset(engCfg)
		replays[k].done = replays[k].done[:0]
		replays[k].delivered, replays[k].outcome, replays[k].snrDB = nil, nil, nil
	}

	var src engine.Source = newScheduleSource(sc, a, r, n)
	pend := sc.pend[:0]
	pendBase := 0
	wwin := &sc.wwin
	wfading := sc.wfading[:0]
	var cut float64
	// Each gateway consumes the current window against its persistent
	// engine state (the cross-window carry-over) and reports verdicts into
	// its private event list; the fan-out barrier makes the merge below
	// identical to a sequential k = 0..g-1 loop. The batch kernel emits
	// the failure verdicts (NoSignal, Capacity) itself, so the event list
	// is the one Done stream. Hoisted out of the window loop (capturing
	// the per-window state by reference) so the closure allocates once
	// per run, not once per window.
	gwWindow := func(k int) {
		rp := &replays[k]
		wn := wwin.Len()
		rx := slab.Grow(rp.rxBuf, wn)
		rp.rxBuf = rx
		for t := 0; t < wn; t++ {
			rx[t] = wwin.TpMW[t] * gains[wwin.Dev[t]][k] * wfading[t*g+k]
		}
		rp.done = rp.eng.Batch(wwin, rx, cut, rp.done[:0])
	}
	more := true
	for w1 := cfg.StreamWindowS; ; w1 += cfg.StreamWindowS {
		cut = w1
		if !more {
			// The source is drained; one final +Inf window flushes the
			// carried-over receptions.
			cut = math.Inf(1)
		}
		more = src.NextWindow(cut, wwin)
		// Fading draws happen at emission, in merge order — the batch
		// fading order — flattened like the batch matrix (t*g+k): one
		// bulk draw per window.
		wfading = slab.Grow(wfading, wwin.Len()*g)
		r.RayleighPowerGains(wfading)
		for t := 0; t < wwin.Len(); t++ {
			pend = append(pend, pendTx{
				dev: int(wwin.Dev[t]), outGw: -1,
				start: wwin.StartS[t], end: wwin.EndS[t],
			})
		}
		//eflora:alloc-ok worker goroutine spawn is amortized over a whole gateway window, not per packet
		par.For(cfg.Parallelism, g, gwWindow)
		// Merge the gateways' verdicts in ascending gateway order — the
		// same precedence walk as the batch merge.
		for k := 0; k < g; k++ {
			rp := &replays[k]
			for _, d := range rp.done {
				pt := &pend[d.Tok-pendBase]
				if d.Outcome == OutcomeDelivered {
					pt.delivered = true
					if res.MaxSNRdB != nil {
						if snr := rp.eng.SNRdB(d.RxMW); snr > res.MaxSNRdB[pt.dev] {
							res.MaxSNRdB[pt.dev] = snr
						}
					}
				}
				if d.Outcome > pt.outcome {
					pt.outcome = d.Outcome
					if d.Outcome == OutcomeDelivered {
						pt.outGw = k
					}
				}
			}
			rp.done = rp.done[:0]
		}
		// Resolve fully-decided transmissions from the ring head in token
		// order (= batch schedule order): everything ending at or before
		// the cut has its final verdict at every gateway.
		h := 0
		for h < len(pend) && pend[h].end <= cut {
			pt := &pend[h]
			if pt.delivered {
				res.Delivered[pt.dev]++
			}
			if cfg.Trace {
				sc.trace = append(sc.trace, PacketRecord{
					Device: pt.dev, StartS: pt.start,
					Outcome: pt.outcome, Gateway: pt.outGw,
				})
			}
			h++
		}
		pend = pend[:copy(pend, pend[h:])]
		pendBase += h
		if !more && len(pend) == 0 {
			break
		}
	}
	sc.pend = pend[:0]
	sc.wfading = wfading[:0]

	for k := 0; k < g; k++ {
		c := replays[k].eng.Counters
		res.CollisionLosses += c.CollisionLosses
		res.CapacityDrops += c.CapacityDrops
		res.SensitivityMisses += c.SensitivityMisses
	}
	if cfg.Trace {
		res.Trace = sc.trace
	}
	finishResult(res, p, a, sc.toa, simEnd)
	return res, nil
}
