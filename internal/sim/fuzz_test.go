package sim

import (
	"math"
	"testing"

	"eflora/internal/geo"
	"eflora/internal/lora"
	"eflora/internal/model"
	"eflora/internal/rng"
)

// TestSimFuzzInvariants drives the simulator across random topologies,
// allocations and traffic settings, checking the physical invariants that
// must hold in every run.
func TestSimFuzzInvariants(t *testing.T) {
	r := rng.New(77001)
	for trial := 0; trial < 12; trial++ {
		p := model.DefaultParams()
		switch trial % 3 {
		case 1:
			p.TrafficDutyCycle = 0.02 + 0.08*r.Float64()
		case 2:
			p.PacketIntervalS = 10 + 100*r.Float64()
		}
		net := &model.Network{
			Devices:  geo.UniformDisc(20+r.Intn(60), 500+5000*r.Float64(), r),
			Gateways: geo.GridGateways(1+r.Intn(4), 4000),
		}
		a := model.NewAllocation(net.N(), p.Plan)
		tpLevels := p.Plan.TxPowerLevels()
		for i := range a.SF {
			a.SF[i] = lora.SF7 + lora.SF(r.Intn(6))
			a.TPdBm[i] = tpLevels[r.Intn(len(tpLevels))]
			a.Channel[i] = r.Intn(p.Plan.NumChannels())
		}
		res, err := Run(net, p, a, Config{
			PacketsPerDevice: 10 + r.Intn(20),
			Seed:             uint64(trial),
			Capture:          trial%2 == 0,
			Trace:            true,
		})
		if err != nil {
			t.Fatal(err)
		}
		totalDelivered := 0
		for i := 0; i < net.N(); i++ {
			if res.Delivered[i] < 0 || res.Delivered[i] > res.Attempts[i] {
				t.Fatalf("trial %d: delivered %d of %d attempts", trial, res.Delivered[i], res.Attempts[i])
			}
			if res.PRR[i] < 0 || res.PRR[i] > 1 {
				t.Fatalf("trial %d: PRR %v", trial, res.PRR[i])
			}
			if res.TxEnergyJ[i] <= 0 || res.TotalEnergyJ[i] < res.TxEnergyJ[i] {
				t.Fatalf("trial %d: energy %v/%v", trial, res.TxEnergyJ[i], res.TotalEnergyJ[i])
			}
			if res.RetxAvgPowerW[i] < res.AvgPowerW[i]-1e-15 {
				t.Fatalf("trial %d: retx power %v below plain %v", trial, res.RetxAvgPowerW[i], res.AvgPowerW[i])
			}
			if math.IsNaN(res.EE[i]) || res.EE[i] < 0 {
				t.Fatalf("trial %d: EE %v", trial, res.EE[i])
			}
			totalDelivered += res.Delivered[i]
		}
		// The trace must agree with the aggregate counters.
		counts := OutcomeCounts(res.Trace)
		if counts[OutcomeDelivered] != totalDelivered {
			t.Fatalf("trial %d: trace delivered %d vs result %d",
				trial, counts[OutcomeDelivered], totalDelivered)
		}
		totalTrace := 0
		for _, c := range counts {
			totalTrace += c
		}
		totalAttempts := 0
		for _, at := range res.Attempts {
			totalAttempts += at
		}
		if totalTrace != totalAttempts {
			t.Fatalf("trial %d: trace %d records vs %d attempts", trial, totalTrace, totalAttempts)
		}
		if res.SimTimeS <= 0 {
			t.Fatalf("trial %d: sim time %v", trial, res.SimTimeS)
		}
	}
}

// TestConfirmedFuzzInvariants does the same for the confirmed engine.
func TestConfirmedFuzzInvariants(t *testing.T) {
	r := rng.New(77002)
	for trial := 0; trial < 6; trial++ {
		p := model.DefaultParams()
		p.PacketIntervalS = 20 + 100*r.Float64()
		net := &model.Network{
			Devices:  geo.UniformDisc(15+r.Intn(30), 3000, r),
			Gateways: geo.GridGateways(1+r.Intn(3), 3000),
		}
		a := model.NewAllocation(net.N(), p.Plan)
		tpLevels := p.Plan.TxPowerLevels()
		for i := range a.SF {
			a.SF[i] = lora.SF7 + lora.SF(r.Intn(6))
			a.TPdBm[i] = tpLevels[r.Intn(len(tpLevels))]
			a.Channel[i] = r.Intn(p.Plan.NumChannels())
		}
		res, err := RunConfirmed(net, p, a, ConfirmedConfig{
			Config:      Config{PacketsPerDevice: 8 + r.Intn(10), Seed: uint64(trial)},
			MaxAttempts: 1 + r.Intn(8),
		})
		if err != nil {
			t.Fatal(err)
		}
		retx := 0
		for i := 0; i < net.N(); i++ {
			if res.Attempts[i] < res.Generated[i] {
				t.Fatalf("trial %d: attempts %d below generated %d", trial, res.Attempts[i], res.Generated[i])
			}
			if res.Delivered[i] > res.Generated[i] {
				t.Fatalf("trial %d: delivered %d above generated %d", trial, res.Delivered[i], res.Generated[i])
			}
			retx += res.Attempts[i] - res.Generated[i]
		}
		if retx != res.Retransmissions {
			t.Fatalf("trial %d: per-device retransmissions %d vs counter %d", trial, retx, res.Retransmissions)
		}
	}
}
