package sim

import (
	"math"
	"testing"

	"eflora/internal/geo"
	"eflora/internal/lora"
	"eflora/internal/model"
	"eflora/internal/rng"
)

// fuzzScenario derives a bounded random topology, parameter variant and
// allocation from (seed, knobs) — the shared generator behind the native
// fuzz targets below. All sizes are clamped so one fuzz iteration stays in
// the milliseconds.
func fuzzScenario(seed, knobs uint64) (*model.Network, model.Params, model.Allocation) {
	r := rng.New(seed)
	p := model.DefaultParams()
	switch knobs % 3 {
	case 1:
		p.TrafficDutyCycle = 0.02 + 0.08*r.Float64()
	case 2:
		p.PacketIntervalS = 10 + 100*r.Float64()
	}
	net := &model.Network{
		Devices:  geo.UniformDisc(20+r.Intn(60), 500+5000*r.Float64(), r),
		Gateways: geo.GridGateways(1+r.Intn(4), 4000),
	}
	a := model.NewAllocation(net.N(), p.Plan)
	tpLevels := p.Plan.TxPowerLevels()
	for i := range a.SF {
		a.SF[i] = lora.SF7 + lora.SF(r.Intn(6))
		a.TPdBm[i] = tpLevels[r.Intn(len(tpLevels))]
		a.Channel[i] = r.Intn(p.Plan.NumChannels())
	}
	return net, p, a
}

// checkRunInvariants asserts the physical invariants every simulation run
// must satisfy, whatever the topology and traffic.
func checkRunInvariants(t *testing.T, net *model.Network, res *Result) {
	t.Helper()
	totalDelivered := 0
	for i := 0; i < net.N(); i++ {
		if res.Delivered[i] < 0 || res.Delivered[i] > res.Attempts[i] {
			t.Fatalf("device %d: delivered %d of %d attempts", i, res.Delivered[i], res.Attempts[i])
		}
		if res.PRR[i] < 0 || res.PRR[i] > 1 {
			t.Fatalf("device %d: PRR %v", i, res.PRR[i])
		}
		if res.TxEnergyJ[i] <= 0 || res.TotalEnergyJ[i] < res.TxEnergyJ[i] {
			t.Fatalf("device %d: energy %v/%v", i, res.TxEnergyJ[i], res.TotalEnergyJ[i])
		}
		if res.RetxAvgPowerW[i] < res.AvgPowerW[i]-1e-15 {
			t.Fatalf("device %d: retx power %v below plain %v", i, res.RetxAvgPowerW[i], res.AvgPowerW[i])
		}
		if math.IsNaN(res.EE[i]) || res.EE[i] < 0 {
			t.Fatalf("device %d: EE %v", i, res.EE[i])
		}
		totalDelivered += res.Delivered[i]
	}
	if res.Trace != nil {
		// The trace must agree with the aggregate counters.
		counts := OutcomeCounts(res.Trace)
		if counts[OutcomeDelivered] != totalDelivered {
			t.Fatalf("trace delivered %d vs result %d", counts[OutcomeDelivered], totalDelivered)
		}
		totalTrace := 0
		for _, c := range counts {
			totalTrace += c
		}
		totalAttempts := 0
		for _, at := range res.Attempts {
			totalAttempts += at
		}
		if totalTrace != totalAttempts {
			t.Fatalf("trace %d records vs %d attempts", totalTrace, totalAttempts)
		}
	}
	if res.SimTimeS <= 0 {
		t.Fatalf("sim time %v", res.SimTimeS)
	}
}

// FuzzSimInvariants drives the simulator across fuzz-chosen topologies,
// allocations and traffic settings, checking the physical invariants that
// must hold in every run, and that a scratch-reusing run is bit-identical
// to a cold one.
func FuzzSimInvariants(f *testing.F) {
	for trial := uint64(0); trial < 12; trial++ {
		f.Add(uint64(77001)+trial, trial)
	}
	sc := new(Scratch)
	f.Fuzz(func(t *testing.T, seed, knobs uint64) {
		net, p, a := fuzzScenario(seed, knobs)
		r := rng.New(seed ^ 0x9e3779b97f4a7c15)
		cfg := Config{
			PacketsPerDevice: 10 + r.Intn(20),
			Seed:             knobs,
			Capture:          knobs%2 == 0,
			Trace:            true,
		}
		res, err := Run(net, p, a, cfg)
		if err != nil {
			t.Fatal(err)
		}
		checkRunInvariants(t, net, res)
		cold := resultDigest(res)
		cfg.Scratch = sc
		res2, err := Run(net, p, a, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if warm := resultDigest(res2); warm != cold {
			t.Fatalf("scratch run digest %s != cold run digest %s", warm, cold)
		}
	})
}

// FuzzConfirmedInvariants does the same for the confirmed-traffic engine's
// bookkeeping: attempts, deliveries and the retransmission counter must
// stay consistent for any topology and retry budget.
func FuzzConfirmedInvariants(f *testing.F) {
	for trial := uint64(0); trial < 6; trial++ {
		f.Add(uint64(77002)+trial, trial)
	}
	f.Fuzz(func(t *testing.T, seed, knobs uint64) {
		net, p, a := fuzzScenario(seed, knobs)
		r := rng.New(seed ^ 0xc2b2ae3d27d4eb4f)
		res, err := RunConfirmed(net, p, a, ConfirmedConfig{
			Config:         Config{PacketsPerDevice: 8 + r.Intn(10), Seed: knobs},
			MaxAttempts:    1 + r.Intn(8),
			HalfDuplexAcks: knobs%2 == 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		retx := 0
		for i := 0; i < net.N(); i++ {
			if res.Attempts[i] < res.Generated[i] {
				t.Fatalf("device %d: attempts %d below generated %d", i, res.Attempts[i], res.Generated[i])
			}
			if res.Delivered[i] > res.Generated[i] {
				t.Fatalf("device %d: delivered %d above generated %d", i, res.Delivered[i], res.Generated[i])
			}
			retx += res.Attempts[i] - res.Generated[i]
		}
		if retx != res.Retransmissions {
			t.Fatalf("per-device retransmissions %d vs counter %d", retx, res.Retransmissions)
		}
	})
}
