package sim

import "testing"

// TestRunAllocBudget pins the steady-state allocation count of a Run that
// reuses a Scratch. The budget is deliberately a little above the measured
// value (a handful of allocations from the parallel fan-out's goroutine
// bookkeeping) but two orders of magnitude below the unpooled cost, so any
// hot-path regression — a buffer that stopped being reused, a slice that
// escapes again — trips it immediately.
func TestRunAllocBudget(t *testing.T) {
	net, p, a := goldenNetwork(120, 4)
	sc := new(Scratch)
	for name, cfg := range map[string]Config{
		"sequential": {PacketsPerDevice: 12, Seed: 7, Parallelism: 1, Scratch: sc},
		"parallel":   {PacketsPerDevice: 12, Seed: 7, Parallelism: 0, Scratch: sc},
	} {
		// Warm the scratch to its high-water mark first.
		if _, err := Run(net, p, a, cfg); err != nil {
			t.Fatal(err)
		}
		got := testing.AllocsPerRun(10, func() {
			if _, err := Run(net, p, a, cfg); err != nil {
				t.Fatal(err)
			}
		})
		const budget = 24
		if got > budget {
			t.Errorf("%s: Run with Scratch allocates %v per run, budget %d", name, got, budget)
		}
	}
}

// TestRunConfirmedAllocBudget extends the scratch-reuse budget to the
// confirmed MAC loop: the event slab, the index heaps and the per-gateway
// engines all live in the Scratch, so a warm RunConfirmed is down to the
// same fixed per-call overhead as Run (the RNG and the withDefaults
// pointer materializations).
func TestRunConfirmedAllocBudget(t *testing.T) {
	net, p, a := goldenNetwork(60, 2)
	sc := new(Scratch)
	cfg := ConfirmedConfig{
		Config:         Config{PacketsPerDevice: 8, Seed: 11, Scratch: sc},
		MaxAttempts:    4,
		HalfDuplexAcks: true,
	}
	if _, err := RunConfirmed(net, p, a, cfg); err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(10, func() {
		if _, err := RunConfirmed(net, p, a, cfg); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 8
	if got > budget {
		t.Errorf("RunConfirmed with Scratch allocates %v per run, budget %d", got, budget)
	}
}

// TestRunStreamingAllocBudget pins the streaming path's steady state the
// same way; sequential so the per-window fan-out adds no goroutine
// bookkeeping noise.
func TestRunStreamingAllocBudget(t *testing.T) {
	net, p, a := goldenNetwork(120, 4)
	sc := new(Scratch)
	cfg := Config{PacketsPerDevice: 12, Seed: 7, Parallelism: 1, Scratch: sc, StreamWindowS: 60}
	if _, err := Run(net, p, a, cfg); err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(10, func() {
		if _, err := Run(net, p, a, cfg); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 8
	if got > budget {
		t.Errorf("streaming Run with Scratch allocates %v per run, budget %d", got, budget)
	}
}
