package sim

import "testing"

// TestRunAllocBudget pins the steady-state allocation count of a Run that
// reuses a Scratch. The budget is deliberately a little above the measured
// value (a handful of allocations from the parallel fan-out's goroutine
// bookkeeping) but two orders of magnitude below the unpooled cost, so any
// hot-path regression — a buffer that stopped being reused, a slice that
// escapes again — trips it immediately.
func TestRunAllocBudget(t *testing.T) {
	net, p, a := goldenNetwork(120, 4)
	sc := new(Scratch)
	for name, cfg := range map[string]Config{
		"sequential": {PacketsPerDevice: 12, Seed: 7, Parallelism: 1, Scratch: sc},
		"parallel":   {PacketsPerDevice: 12, Seed: 7, Parallelism: 0, Scratch: sc},
	} {
		// Warm the scratch to its high-water mark first.
		if _, err := Run(net, p, a, cfg); err != nil {
			t.Fatal(err)
		}
		got := testing.AllocsPerRun(10, func() {
			if _, err := Run(net, p, a, cfg); err != nil {
				t.Fatal(err)
			}
		})
		const budget = 24
		if got > budget {
			t.Errorf("%s: Run with Scratch allocates %v per run, budget %d", name, got, budget)
		}
	}
}
