// Package sim is a discrete-event packet-level simulator of multi-gateway
// LoRaWAN uplink traffic — the repository's substitute for the NS-3 LoRa
// module the paper evaluates on. It models:
//
//   - unslotted-ALOHA periodic senders with a uniformly random phase,
//   - per-SF time-on-air and per-device transmission power,
//   - independent Rayleigh fading per transmission and gateway,
//   - receiver sensitivity and SNR thresholds per spreading factor,
//   - the paper's collision rule (two overlapping packets with the same SF
//     and channel at a gateway are both lost, regardless of overlap size),
//     with an optional capture-effect variant,
//   - the SX1301 demodulator limit (at most GatewayCapacity concurrent
//     locks per gateway), and
//   - network-server de-duplication (a packet is delivered if any gateway
//     decodes it).
//
// Gateways replay the shared transmission schedule independently: all
// randomness (phases and fading) is drawn up front, each gateway writes
// into its own buffers, and the buffers are merged in gateway order. Run
// therefore produces bit-identical results at any Parallelism setting.
//
// The reception physics itself — lock, overlap/capture, capacity,
// half-duplex blocking, the SNR decision — lives in the shared
// engine.Gateway state machine; this package drives it with schedules
// (batch or streaming) and owns the cross-gateway merge. Setting
// Config.StreamWindowS switches Run to time-windowed streaming
// generation with O(devices + active window) resident schedule memory
// and bit-identical output.
package sim

import (
	"fmt"
	"math"
	"sort"

	"eflora/internal/engine"
	"eflora/internal/lora"
	"eflora/internal/model"
	"eflora/internal/par"
	"eflora/internal/rng"
	"eflora/internal/slab"
)

// Config controls a simulation run.
type Config struct {
	// PacketsPerDevice is how many reporting periods to simulate
	// (default 100).
	PacketsPerDevice int
	// Seed drives all randomness (phases and fading).
	Seed uint64
	// Capture enables the capture-effect variant of the collision rule: a
	// packet at least the capture threshold stronger than every
	// overlapping same-SF same-channel packet survives. Off by default
	// (the paper's rule).
	Capture bool
	// Trace records a PacketRecord per transmission in Result.Trace
	// (memory proportional to the packet count).
	Trace bool
	// MeasureSNR records each device's best delivered-packet SNR in
	// Result.MaxSNRdB — the uplink quality measurement a network-side ADR
	// controller consumes.
	MeasureSNR bool
	// CaptureThresholdDB is the power advantage needed to capture. nil
	// means the 6 dB default; point it at 0 for a pure strongest-wins
	// rule (any power advantage captures).
	CaptureThresholdDB *float64
	// Parallelism bounds the gateway-replay goroutines (0 = NumCPU).
	// Results are bit-identical at any value; it only trades wall-clock
	// time for cores.
	Parallelism int
	// StreamWindowS, when positive, switches Run to time-windowed
	// streaming generation: devices emit transmissions window by window
	// and in-flight receptions carry over across boundaries, so resident
	// schedule memory is O(devices + active window) instead of O(total
	// transmissions). Results are bit-identical to batch mode at any
	// window size. 0 keeps the batch (whole-schedule) path. A Trace is
	// still O(total transmissions) — it is the output, not the schedule.
	StreamWindowS float64
	// Scratch, when non-nil, supplies the reusable buffer arena for this
	// run, making repeated runs (the trials behind every figure)
	// allocation-free. See Scratch for the aliasing contract. nil keeps
	// the old behaviour: every run allocates fresh buffers, and the
	// returned Result is independently owned.
	Scratch *Scratch
}

// MaxTransmissions caps the expected transmission count of the
// confirmed-traffic energy approximation (LoRaWAN retries a confirmed
// uplink at most 8 times).
const MaxTransmissions = 8

// DefaultCaptureThresholdDB is the capture threshold used when
// Config.CaptureThresholdDB is nil (the SX127x co-channel rejection
// figure the paper's capture ablation uses).
const DefaultCaptureThresholdDB = 6.0

func (c Config) withDefaults() Config {
	if c.PacketsPerDevice <= 0 {
		c.PacketsPerDevice = 100
	}
	if c.CaptureThresholdDB == nil {
		th := DefaultCaptureThresholdDB
		c.CaptureThresholdDB = &th
	}
	return c
}

// Result aggregates a simulation run.
type Result struct {
	// Attempts and Delivered count packets per device.
	Attempts, Delivered []int
	// PRR is Delivered/Attempts per device.
	PRR []float64
	// TxEnergyJ is the per-device energy spent on transmission cycles
	// (radio overheads + air time), the E_s accounting of the model.
	TxEnergyJ []float64
	// TotalEnergyJ additionally charges sleep current over the whole
	// simulated time (used for lifetime).
	TotalEnergyJ []float64
	// EE is delivered application bits per joule of transmission energy,
	// the simulator's counterpart of the model's Eq. 2.
	EE []float64
	// AvgPowerW is TotalEnergyJ / SimTimeS, the lifetime driver for
	// unconfirmed (fire-and-forget) traffic.
	AvgPowerW []float64
	// RetxAvgPowerW is the confirmed-traffic approximation the paper's
	// lifetime evaluation uses: transmission energy is scaled by the
	// expected transmission count 1/PRR (capped at the LoRaWAN limit of
	// MaxTransmissions attempts), so unreliable devices drain faster.
	RetxAvgPowerW []float64
	// SimTimeS is the simulated duration.
	SimTimeS float64
	// CollisionLosses counts gateway-level receptions destroyed by
	// same-SF same-channel overlap; CapacityDrops counts receptions that
	// found no free demodulator; SensitivityMisses counts transmissions
	// that arrived below sensitivity at a gateway.
	CollisionLosses, CapacityDrops, SensitivityMisses int
	// Trace holds one record per transmission when Config.Trace is set.
	Trace []PacketRecord
	// MaxSNRdB is each device's best delivered-packet SNR when
	// Config.MeasureSNR is set (-Inf for devices that delivered nothing).
	MaxSNRdB []float64
}

// The transmission schedule lives in struct-of-arrays form
// (engine.Window): parallel columns instead of an array of structs, so
// the batch kernel's passes stream through contiguous memory. The
// columns are built unsorted in device order (preserving the jitter
// RNG stream), argsorted by (start, dev) via a permutation, and
// gathered into the sorted window.

// engineConfig assembles the shared receiver state machine's parameters
// from this package's knobs. halfDuplex is on only for confirmed traffic.
func engineConfig(p model.Params, captureLin, noiseMW float64, capture, halfDuplex bool) engine.Config {
	return engine.Config{
		Capture:    capture,
		CaptureLin: captureLin,
		Capacity:   p.GatewayCapacity,
		HalfDuplex: halfDuplex,
		NoiseMW:    noiseMW,
		Thresholds: engine.NewThresholds(),
	}
}

// deviceSchedule fills the per-device schedule-building buffers (toa,
// tpMW, interval, packets) and returns the simulated horizon and total
// transmission count. The horizon is PacketsPerDevice periods of the
// slowest device, so every device gets at least PacketsPerDevice packets
// and devices with shorter reporting intervals (duty-cycle traffic)
// correctly send proportionally more.
func deviceSchedule(sc *Scratch, net *model.Network, p model.Params, a model.Allocation, packetsPerDevice int) (simEnd float64, total int) {
	n := net.N()
	toa := slab.Grow(sc.toa, n)
	tpMW := slab.Grow(sc.tpMW, n)
	interval := slab.Grow(sc.interval, n)
	packets := slab.Grow(sc.packets, n)
	sc.toa, sc.tpMW, sc.interval, sc.packets = toa, tpMW, interval, packets
	for i := 0; i < n; i++ {
		toa[i] = p.TimeOnAir(a.SF[i])
		tpMW[i] = lora.DBmToMilliwatts(a.TPdBm[i])
		interval[i] = p.IntervalFor(net, i, a.SF[i])
		if t := interval[i] * float64(packetsPerDevice); t > simEnd {
			simEnd = t
		}
	}
	for i := 0; i < n; i++ {
		packets[i] = int(simEnd / interval[i])
		if packets[i] < packetsPerDevice {
			packets[i] = packetsPerDevice
		}
		total += packets[i]
	}
	return simEnd, total
}

// initResult readies the scratch-backed Result for a run over the given
// schedule: per-device slices sized and cleared, counters zeroed,
// optional fields nil'd out (Run and runStreaming re-point them when
// their option is on).
func initResult(sc *Scratch, n int, simEnd float64, measureSNR bool) *Result {
	res := &sc.res
	res.Attempts = slab.Grow(res.Attempts, n)
	res.Delivered = slab.GrowZero(res.Delivered, n)
	res.PRR = slab.Grow(res.PRR, n)
	res.TxEnergyJ = slab.Grow(res.TxEnergyJ, n)
	res.TotalEnergyJ = slab.Grow(res.TotalEnergyJ, n)
	res.EE = slab.GrowZero(res.EE, n)
	res.AvgPowerW = slab.Grow(res.AvgPowerW, n)
	res.RetxAvgPowerW = slab.Grow(res.RetxAvgPowerW, n)
	res.SimTimeS = simEnd
	res.CollisionLosses, res.CapacityDrops, res.SensitivityMisses = 0, 0, 0
	res.Trace = nil
	res.MaxSNRdB = nil
	for i := 0; i < n; i++ {
		res.Attempts[i] = sc.packets[i]
	}
	if measureSNR {
		sc.maxSNR = slab.Grow(sc.maxSNR, n)
		res.MaxSNRdB = sc.maxSNR
		for i := range res.MaxSNRdB {
			res.MaxSNRdB[i] = math.Inf(-1)
		}
	}
	return res
}

// finishResult derives the per-device energy and rate statistics from the
// delivery counts — identical for the batch and streaming paths.
func finishResult(res *Result, p model.Params, a model.Allocation, toa []float64, simEnd float64) {
	lbits := p.AppPayloadBits()
	for i := range res.Attempts {
		res.PRR[i] = float64(res.Delivered[i]) / float64(res.Attempts[i])
		eTx := p.Profile.TransmissionEnergy(a.TPdBm[i], toa[i]) * float64(res.Attempts[i])
		res.TxEnergyJ[i] = eTx
		active := (p.Profile.OverheadDuration() + toa[i]) * float64(res.Attempts[i])
		sleep := simEnd - active
		if sleep < 0 {
			sleep = 0
		}
		res.TotalEnergyJ[i] = eTx + p.Profile.SleepPowerDraw()*sleep
		if eTx > 0 {
			res.EE[i] = lbits * float64(res.Delivered[i]) / eTx
		}
		res.AvgPowerW[i] = res.TotalEnergyJ[i] / simEnd
		etx := float64(MaxTransmissions)
		if res.PRR[i] > 1/float64(MaxTransmissions) {
			etx = 1 / res.PRR[i]
		}
		res.RetxAvgPowerW[i] = (eTx*etx + p.Profile.SleepPowerDraw()*sleep) / simEnd
	}
}

// Run simulates the network under the given allocation and returns
// per-device statistics.
//
//eflora:hotpath
func Run(net *model.Network, p model.Params, a model.Allocation, cfg Config) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := net.Validate(p); err != nil {
		return nil, err
	}
	if err := a.Validate(net.N(), p); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if cfg.StreamWindowS > 0 {
		return runStreaming(net, p, a, cfg)
	}
	n, g := net.N(), net.G()
	r := rng.New(cfg.Seed)
	sc := cfg.Scratch
	if sc == nil {
		sc = new(Scratch)
	}

	gains := model.Gains(net, p)
	noiseMW := lora.DBmToMilliwatts(p.NoiseDBm)
	captureLin := lora.DBToLinear(*cfg.CaptureThresholdDB)
	engCfg := engineConfig(p, captureLin, noiseMW, cfg.Capture, false)

	// Build the transmission schedule: periodic with random phase.
	simEnd, total := deviceSchedule(sc, net, p, a, cfg.PacketsPerDevice)
	toa, tpMW, interval, packets := sc.toa, sc.tpMW, sc.interval, sc.packets
	// Each device sends one packet per reporting period at a uniformly
	// random instant within the period (the paper's unslotted ALOHA with
	// per-cycle Poisson send times) — a fixed per-device phase would lock
	// pairs of same-group devices into colliding either every cycle or
	// never.
	ustart := slab.Grow(sc.ustart, total)
	udev := slab.Grow(sc.udev, total)
	perm := slab.Grow(sc.perm, total)
	sc.ustart, sc.udev, sc.perm = ustart, udev, perm
	ti := 0
	for i := 0; i < n; i++ {
		// Jitter within [0, interval-ToA] so a device never overlaps its
		// own next packet (a real device queues, it does not double-send).
		slack := interval[i] - toa[i]
		if slack < 0 {
			slack = 0
		}
		for m := 0; m < packets[i]; m++ {
			ustart[ti] = float64(m)*interval[i] + r.Float64()*slack
			udev[ti] = int32(i)
			perm[ti] = int32(ti)
			ti++
		}
	}
	// Argsort by (start, dev) — a unique total order (a device's starts
	// strictly increase), so any sort algorithm yields the same
	// permutation — then gather the sorted columns.
	sort.Slice(perm, func(x, y int) bool {
		px, py := perm[x], perm[y]
		if ustart[px] != ustart[py] {
			return ustart[px] < ustart[py]
		}
		return udev[px] < udev[py]
	})
	w := &sc.win
	w.Reset(0)
	w.Grow(total)
	for _, pi := range perm {
		d := udev[pi]
		start := ustart[pi]
		w.Append(int(d), a.SF[d], a.Channel[d], start, start+toa[d], tpMW[d])
	}

	// Pre-draw Rayleigh fading per transmission and gateway so gateway
	// processing order cannot change the random stream. The matrix is
	// flattened row-major (transmission t, gateway k at t*g+k), filled
	// by one bulk draw over the whole run.
	fading := slab.Grow(sc.fading, total*g)
	sc.fading = fading
	r.RayleighPowerGains(fading)

	res := initResult(sc, n, simEnd, cfg.MeasureSNR)

	// Replay every gateway against the shared schedule. Each gateway owns
	// its buffers, so the replays are independent and run concurrently;
	// the merge below folds them back in ascending gateway order, which
	// makes the result identical to a sequential k = 0..g-1 loop.
	replays := slab.Grow(sc.replays, g)
	sc.replays = replays
	par.For(cfg.Parallelism, g, func(k int) {
		simulateGateway(k, w, fading, g, gains, engCfg, cfg, &replays[k])
	})

	delivered := slab.GrowZero(sc.delivered, total)
	sc.delivered = delivered
	var outcome []Outcome
	var outGw []int
	if cfg.Trace {
		outcome = slab.GrowZero(sc.outcome, total)
		outGw = slab.Grow(sc.outGw, total)
		sc.outcome, sc.outGw = outcome, outGw
		for i := range outGw {
			outGw[i] = -1
		}
	}
	for k := 0; k < g; k++ {
		rp := &replays[k]
		res.CollisionLosses += rp.collisionLosses
		res.CapacityDrops += rp.capacityDrops
		res.SensitivityMisses += rp.sensitivityMisses
		for t := range rp.delivered {
			if rp.delivered[t] {
				delivered[t] = true
			}
		}
		if cfg.Trace {
			// Keep the most informative outcome across gateways; the
			// decoding gateway of a delivered packet is the lowest one.
			for t := range rp.outcome {
				if rp.outcome[t] > outcome[t] {
					outcome[t] = rp.outcome[t]
					if rp.outcome[t] == OutcomeDelivered {
						outGw[t] = k
					}
				}
			}
		}
		if cfg.MeasureSNR {
			for t := range rp.snrDB {
				if rp.delivered[t] && rp.snrDB[t] > res.MaxSNRdB[w.Dev[t]] {
					res.MaxSNRdB[w.Dev[t]] = rp.snrDB[t]
				}
			}
		}
	}
	if cfg.Trace {
		sc.trace = slab.Grow(sc.trace, total)
		res.Trace = sc.trace
		for t := 0; t < total; t++ {
			res.Trace[t] = PacketRecord{
				Device:  int(w.Dev[t]),
				StartS:  w.StartS[t],
				Outcome: outcome[t],
				Gateway: outGw[t],
			}
		}
	}

	for t, ok := range delivered {
		if ok {
			res.Delivered[w.Dev[t]]++
		}
	}
	finishResult(res, p, a, toa, simEnd)
	return res, nil
}

// gwReplay is the outcome of replaying the transmission schedule at one
// gateway: the gateway's receiver state machine plus private buffers
// that Run merges in gateway order, reused across runs when a Scratch is
// supplied. outcome is populated only under Config.Trace and snrDB only
// under Config.MeasureSNR. The streaming path reuses eng and done (its
// per-window event list) and leaves the schedule-length arrays nil.
type gwReplay struct {
	eng  engine.Gateway
	done []engine.Done
	// rxBuf is the per-gateway received-power column handed to the batch
	// kernel, parallel to the window being replayed.
	rxBuf     []float64
	delivered []bool
	// outcome and snrDB are nil when their option is off; outcomeBuf and
	// snrBuf retain the backing arrays across runs either way.
	outcome                                           []Outcome
	snrDB                                             []float64
	outcomeBuf                                        []Outcome
	snrBuf                                            []float64
	collisionLosses, capacityDrops, sensitivityMisses int
}

// apply folds a batch of completion verdicts into the replay's
// per-transmission buffers.
//
//eflora:hotpath
func (rp *gwReplay) apply(done []engine.Done) {
	for _, d := range done {
		if d.Outcome == OutcomeDelivered {
			rp.delivered[d.Tok] = true
			if rp.snrDB != nil {
				rp.snrDB[d.Tok] = rp.eng.SNRdB(d.RxMW)
			}
		}
		if rp.outcome != nil {
			rp.outcome[d.Tok] = d.Outcome
		}
	}
}

// simulateGateway replays the transmission schedule at gateway k into
// rp, reusing rp's buffers from previous runs. It reads only shared
// immutable state (schedule columns, flattened fading, gains), so
// concurrent calls for different gateways are safe. The reception
// physics lives in rp.eng (engine.Gateway); this driver builds the
// gateway's received-power column and hands the whole window to the
// batch kernel in one call.
//
//eflora:hotpath
func simulateGateway(
	k int, w *engine.Window, fading []float64, g int, gains [][]float64,
	engCfg engine.Config, cfg Config, rp *gwReplay,
) {
	total := w.Len()
	rp.delivered = slab.GrowZero(rp.delivered, total)
	rp.outcome, rp.snrDB = nil, nil
	if cfg.Trace {
		rp.outcomeBuf = slab.GrowZero(rp.outcomeBuf, total)
		rp.outcome = rp.outcomeBuf
	}
	if cfg.MeasureSNR {
		rp.snrBuf = slab.Grow(rp.snrBuf, total)
		rp.snrDB = rp.snrBuf
	}
	rp.eng.Reset(engCfg)
	rx := slab.Grow(rp.rxBuf, total)
	rp.rxBuf = rx
	for t := 0; t < total; t++ {
		rx[t] = w.TpMW[t] * gains[w.Dev[t]][k] * fading[t*g+k]
	}
	// Batch emits exactly one Done per window entry here (cut = +Inf, no
	// carry-over after Reset); pre-growing skips the append-doubling
	// churn on the first, cold run.
	rp.done = slab.Grow(rp.done, total)
	done := rp.eng.Batch(w, rx, math.Inf(1), rp.done[:0])
	rp.apply(done)
	rp.done = done[:0]
	rp.collisionLosses = rp.eng.Counters.CollisionLosses
	rp.capacityDrops = rp.eng.Counters.CapacityDrops
	rp.sensitivityMisses = rp.eng.Counters.SensitivityMisses
}

// Summary renders headline statistics for logs.
func (r *Result) Summary() string {
	totalAttempts, totalDelivered := 0, 0
	for i := range r.Attempts {
		totalAttempts += r.Attempts[i]
		totalDelivered += r.Delivered[i]
	}
	prr := 0.0
	if totalAttempts > 0 {
		prr = float64(totalDelivered) / float64(totalAttempts)
	}
	return fmt.Sprintf("attempts=%d delivered=%d prr=%.3f collisions=%d capacity_drops=%d sensitivity_misses=%d",
		totalAttempts, totalDelivered, prr, r.CollisionLosses, r.CapacityDrops, r.SensitivityMisses)
}
