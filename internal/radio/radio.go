// Package radio models the energy consumption of a LoRaWAN class-A end
// device following the measurement-based breakdown of Casals et al.,
// "Modeling the Energy Performance of LoRaWAN" (Sensors 2017), which the
// paper's energy model (Section III-B) builds on: a transmission cycle is
// decomposed into wake-up, radio preparation, the actual in-the-air
// transmission, the two receive windows, post-processing, and sleep. Only
// the TX phase depends on the allocated spreading factor and transmission
// power; the other phases are identical across devices, exactly as the
// paper assumes.
package radio

import (
	"fmt"
	"math"
	"sort"
)

// Profile holds the electrical characteristics of an end device.
type Profile struct {
	// SupplyVoltage in volts (typical LoRa motes run at 3.3 V).
	SupplyVoltage float64

	// Fixed-duration phases of one transmission cycle, excluding TX.
	// Durations in seconds, currents in amperes (Casals et al., Table 4).
	WakeUpDuration   float64
	WakeUpCurrent    float64
	RadioPrepPerTx   float64
	RadioPrepCurrent float64
	RxWindowDuration float64
	RxWindowCurrent  float64
	PostProcDuration float64
	PostProcCurrent  float64

	// SleepCurrent is drawn for the remainder of the reporting period.
	SleepCurrent float64

	// txDBm and txAmp are the TX supply-current interpolation table:
	// txAmp[i] amperes at txDBm[i] dBm, with txDBm sorted ascending.
	// TxCurrent interpolates linearly between entries. Kept as parallel
	// sorted slices so lookups are allocation-free — TxCurrent sits on
	// the allocator's candidate-evaluation hot path.
	txDBm, txAmp []float64
}

// DefaultProfile returns the SX1272/SX1276-class profile used throughout
// the experiments. Values follow Casals et al. (2017) measurements of a
// LoRaWAN module at 3.3 V, rounded: 168.2 mJ-scale transmission cycles and
// microamp sleep.
func DefaultProfile() Profile {
	return Profile{
		SupplyVoltage:    3.3,
		WakeUpDuration:   168.2e-3,
		WakeUpCurrent:    22.1e-3,
		RadioPrepPerTx:   83.8e-3,
		RadioPrepCurrent: 13.3e-3,
		RxWindowDuration: 33.1e-3,
		RxWindowCurrent:  38.1e-3,
		PostProcDuration: 28.0e-3,
		PostProcCurrent:  14.2e-3,
		SleepCurrent:     45e-6,
		// SX1272/76 datasheet TX supply currents (RFO/PA_BOOST path).
		txDBm: []float64{2, 4, 6, 8, 10, 12, 14, 16, 18, 20},
		txAmp: []float64{24e-3, 26e-3, 28e-3, 31e-3, 35e-3, 39e-3, 44e-3, 58e-3, 75e-3, 125e-3},
	}
}

// TxCurrent returns the supply current in amperes while transmitting at
// tpDBm, interpolating linearly between table entries and clamping outside
// the table's range.
func (p Profile) TxCurrent(tpDBm float64) float64 {
	if len(p.txDBm) == 0 {
		return 0
	}
	last := len(p.txDBm) - 1
	if tpDBm <= p.txDBm[0] {
		return p.txAmp[0]
	}
	if tpDBm >= p.txDBm[last] {
		return p.txAmp[last]
	}
	i := sort.SearchFloat64s(p.txDBm, tpDBm)
	if p.txDBm[i] == tpDBm {
		return p.txAmp[i]
	}
	lo, hi := p.txDBm[i-1], p.txDBm[i]
	frac := (tpDBm - lo) / (hi - lo)
	return p.txAmp[i-1] + frac*(p.txAmp[i]-p.txAmp[i-1])
}

// TxPowerDraw returns the electrical power in watts drawn while
// transmitting at tpDBm — the e_{p_i} of the paper's Eq. 3.
func (p Profile) TxPowerDraw(tpDBm float64) float64 {
	return p.SupplyVoltage * p.TxCurrent(tpDBm)
}

// TxEnergy returns the energy in joules for the in-the-air portion of a
// transmission lasting airTimeS seconds at tpDBm (paper Eq. 3:
// E_tx = e_p · T).
func (p Profile) TxEnergy(tpDBm, airTimeS float64) float64 {
	return p.TxPowerDraw(tpDBm) * airTimeS
}

// OverheadEnergy returns the SF- and TP-independent energy of one
// transmission cycle: wake-up, radio preparation, both class-A receive
// windows and post-processing.
func (p Profile) OverheadEnergy() float64 {
	v := p.SupplyVoltage
	return v * (p.WakeUpDuration*p.WakeUpCurrent +
		p.RadioPrepPerTx*p.RadioPrepCurrent +
		2*p.RxWindowDuration*p.RxWindowCurrent +
		p.PostProcDuration*p.PostProcCurrent)
}

// OverheadDuration returns the duration of the fixed phases in seconds.
func (p Profile) OverheadDuration() float64 {
	return p.WakeUpDuration + p.RadioPrepPerTx + 2*p.RxWindowDuration + p.PostProcDuration
}

// SleepPowerDraw returns the power drawn while sleeping, in watts.
func (p Profile) SleepPowerDraw() float64 {
	return p.SupplyVoltage * p.SleepCurrent
}

// TransmissionEnergy returns E_s, the total energy in joules of one full
// transmission attempt (fixed phases + the SF/TP-dependent air time).
func (p Profile) TransmissionEnergy(tpDBm, airTimeS float64) float64 {
	return p.OverheadEnergy() + p.TxEnergy(tpDBm, airTimeS)
}

// CycleEnergy returns the energy of one reporting period of length
// periodS containing one transmission attempt: the transmission itself
// plus sleep for the rest of the period. It returns an error if the cycle
// activities do not fit in the period.
func (p Profile) CycleEnergy(tpDBm, airTimeS, periodS float64) (float64, error) {
	active := p.OverheadDuration() + airTimeS
	if active > periodS {
		return 0, fmt.Errorf("radio: active time %.3fs exceeds period %.3fs", active, periodS)
	}
	return p.TransmissionEnergy(tpDBm, airTimeS) + p.SleepPowerDraw()*(periodS-active), nil
}

// AveragePower returns the long-run average power in watts of a device
// reporting every periodS with the given per-attempt air time.
func (p Profile) AveragePower(tpDBm, airTimeS, periodS float64) (float64, error) {
	e, err := p.CycleEnergy(tpDBm, airTimeS, periodS)
	if err != nil {
		return 0, err
	}
	return e / periodS, nil
}

// Battery models a simple energy reservoir.
type Battery struct {
	// CapacityJoules is the total extractable energy.
	CapacityJoules float64
}

// NewBatteryFromMilliampHours builds a battery from the usual mAh rating
// at the given voltage (e.g. 2400 mAh at 3.3 V ≈ 28.5 kJ).
func NewBatteryFromMilliampHours(mah, volts float64) Battery {
	return Battery{CapacityJoules: mah / 1000 * 3600 * volts}
}

// LifetimeSeconds returns how long the battery sustains the given average
// power draw. It returns +Inf for non-positive power.
func (b Battery) LifetimeSeconds(avgPowerW float64) float64 {
	if avgPowerW <= 0 {
		return math.Inf(1)
	}
	return b.CapacityJoules / avgPowerW
}
