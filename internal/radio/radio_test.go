package radio

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTxCurrentTableAnchors(t *testing.T) {
	p := DefaultProfile()
	tests := []struct {
		dbm  float64
		want float64
	}{
		{2, 24e-3},
		{14, 44e-3},
		{20, 125e-3},
	}
	for _, tt := range tests {
		if got := p.TxCurrent(tt.dbm); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("TxCurrent(%v) = %v, want %v", tt.dbm, got, tt.want)
		}
	}
}

func TestTxCurrentInterpolates(t *testing.T) {
	p := DefaultProfile()
	// Halfway between 2 dBm (24 mA) and 4 dBm (26 mA) is 25 mA.
	if got := p.TxCurrent(3); math.Abs(got-25e-3) > 1e-12 {
		t.Errorf("TxCurrent(3) = %v, want 25 mA", got)
	}
}

func TestTxCurrentClampsOutsideTable(t *testing.T) {
	p := DefaultProfile()
	if got := p.TxCurrent(-10); got != p.TxCurrent(2) {
		t.Errorf("TxCurrent(-10) = %v, want clamp to 2 dBm value", got)
	}
	if got := p.TxCurrent(30); got != p.TxCurrent(20) {
		t.Errorf("TxCurrent(30) = %v, want clamp to 20 dBm value", got)
	}
}

func TestTxCurrentMonotone(t *testing.T) {
	p := DefaultProfile()
	prev := 0.0
	for dbm := 2.0; dbm <= 20; dbm += 0.5 {
		cur := p.TxCurrent(dbm)
		if cur < prev {
			t.Fatalf("TxCurrent not monotone at %v dBm: %v < %v", dbm, cur, prev)
		}
		prev = cur
	}
}

func TestTxCurrentEmptyTable(t *testing.T) {
	var p Profile
	if got := p.TxCurrent(14); got != 0 {
		t.Errorf("empty profile TxCurrent = %v, want 0", got)
	}
}

func TestTxEnergyScalesWithAirTime(t *testing.T) {
	p := DefaultProfile()
	e1 := p.TxEnergy(14, 0.05)
	e2 := p.TxEnergy(14, 0.10)
	if math.Abs(e2/e1-2) > 1e-12 {
		t.Errorf("TxEnergy should be linear in air time: ratio = %v", e2/e1)
	}
	// 14 dBm, 3.3 V, 44 mA, 50 ms => 7.26 mJ.
	want := 3.3 * 44e-3 * 0.05
	if math.Abs(e1-want) > 1e-12 {
		t.Errorf("TxEnergy(14, 50ms) = %v, want %v", e1, want)
	}
}

func TestOverheadEnergyPositiveAndFixed(t *testing.T) {
	p := DefaultProfile()
	oh := p.OverheadEnergy()
	if oh <= 0 {
		t.Fatalf("OverheadEnergy = %v", oh)
	}
	// Overhead must not depend on TP or air time (paper assumption).
	if p.TransmissionEnergy(2, 0.01)-p.TxEnergy(2, 0.01) != oh {
		t.Error("TransmissionEnergy does not decompose into overhead + TX")
	}
}

func TestCycleEnergySleepDominatedForLongPeriods(t *testing.T) {
	p := DefaultProfile()
	short, err := p.CycleEnergy(14, 0.05, 60)
	if err != nil {
		t.Fatal(err)
	}
	long, err := p.CycleEnergy(14, 0.05, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if long <= short {
		t.Errorf("longer period should accumulate more sleep energy: %v vs %v", long, short)
	}
	// The increment should be exactly the sleep draw over the delta.
	wantDelta := p.SleepPowerDraw() * (3600 - 60)
	if math.Abs((long-short)-wantDelta) > 1e-12 {
		t.Errorf("sleep delta = %v, want %v", long-short, wantDelta)
	}
}

func TestCycleEnergyRejectsOverfullPeriod(t *testing.T) {
	p := DefaultProfile()
	if _, err := p.CycleEnergy(14, 2.0, 1.0); err == nil {
		t.Error("CycleEnergy should fail when activity exceeds the period")
	}
}

func TestAveragePower(t *testing.T) {
	p := DefaultProfile()
	avg, err := p.AveragePower(14, 0.05, 600)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := p.CycleEnergy(14, 0.05, 600)
	if math.Abs(avg-e/600) > 1e-15 {
		t.Errorf("AveragePower = %v, want %v", avg, e/600)
	}
}

func TestEnergyGapSF7vsSF12Shape(t *testing.T) {
	// The paper's motivation: per-transmission energy gap between short
	// and long air times is large, but the whole-cycle gap shrinks once
	// sleep dominates (they report ~4x for realistic duty cycles).
	p := DefaultProfile()
	const (
		airFast = 0.070 // ~SF7 air time for the paper's 21-byte payload
		airSlow = 1.810 // ~SF12
		period  = 600.0
	)
	txGap := p.TxEnergy(14, airSlow) / p.TxEnergy(14, airFast)
	if txGap < 20 || txGap > 30 {
		t.Errorf("TX-only energy gap = %.1f, want ~25x", txGap)
	}
	fast, err := p.CycleEnergy(14, airFast, period)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := p.CycleEnergy(14, airSlow, period)
	if err != nil {
		t.Fatal(err)
	}
	cycleGap := slow / fast
	if cycleGap < 1.5 || cycleGap > 10 {
		t.Errorf("whole-cycle energy gap = %.2f, want within [1.5, 10]", cycleGap)
	}
	if cycleGap >= txGap {
		t.Errorf("sleep should compress the gap: cycle %.1f >= tx %.1f", cycleGap, txGap)
	}
}

func TestTransmissionEnergyMonotoneInPower(t *testing.T) {
	p := DefaultProfile()
	f := func(rawTp uint8, rawAir uint16) bool {
		tp1 := 2 + float64(rawTp%12)
		tp2 := tp1 + 1
		air := 0.01 + float64(rawAir)/65535.0
		return p.TransmissionEnergy(tp2, air) >= p.TransmissionEnergy(tp1, air)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBattery(t *testing.T) {
	b := NewBatteryFromMilliampHours(2400, 3.3)
	want := 2.4 * 3600 * 3.3 // 28512 J
	if math.Abs(b.CapacityJoules-want) > 1e-9 {
		t.Errorf("capacity = %v, want %v", b.CapacityJoules, want)
	}
	if got := b.LifetimeSeconds(1); math.Abs(got-want) > 1e-9 {
		t.Errorf("lifetime at 1 W = %v, want %v", got, want)
	}
	if got := b.LifetimeSeconds(0); !math.IsInf(got, 1) {
		t.Errorf("lifetime at 0 W = %v, want +Inf", got)
	}
}

func TestBatteryLifetimeScalesInversely(t *testing.T) {
	b := NewBatteryFromMilliampHours(1000, 3.3)
	l1 := b.LifetimeSeconds(0.001)
	l2 := b.LifetimeSeconds(0.002)
	if math.Abs(l1/l2-2) > 1e-12 {
		t.Errorf("halving power should double lifetime: %v vs %v", l1, l2)
	}
}
