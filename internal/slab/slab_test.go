package slab

import "testing"

func TestGrowReusesCapacity(t *testing.T) {
	buf := make([]int, 0, 16)
	a := Grow(buf, 8)
	if len(a) != 8 {
		t.Fatalf("len = %d, want 8", len(a))
	}
	if &a[0] != &buf[:1][0] {
		t.Error("Grow reallocated despite sufficient capacity")
	}
	b := Grow(a, 32)
	if len(b) != 32 {
		t.Fatalf("len = %d, want 32", len(b))
	}
	if cap(b) < 32 {
		t.Fatalf("cap = %d, want >= 32", cap(b))
	}
	// Shrink then re-grow within the new high-water mark: no realloc.
	c := Grow(b[:0], 20)
	if &c[0] != &b[0] {
		t.Error("Grow reallocated a warmed buffer")
	}
}

func TestGrowZero(t *testing.T) {
	buf := []float64{1, 2, 3, 4}
	z := GrowZero(buf, 3)
	for i, v := range z {
		if v != 0 {
			t.Errorf("z[%d] = %v, want 0", i, v)
		}
	}
	if &z[0] != &buf[0] {
		t.Error("GrowZero reallocated despite sufficient capacity")
	}
}

func TestGrowAllocFree(t *testing.T) {
	buf := make([]byte, 0, 1024)
	got := testing.AllocsPerRun(100, func() {
		buf = Grow(buf[:0], 512)
		buf = GrowZero(buf, 1024)
	})
	if got != 0 {
		t.Errorf("warm Grow/GrowZero allocate %v per run, want 0", got)
	}
}
