// Package slab holds the tiny buffer-reuse helpers every arena in this
// repository leans on: resize-without-realloc slice growth with the
// high-water-capacity retention contract the Scratch arenas (sim), the
// batch receiver kernel (engine) and the live parse scratch (ingest)
// all share. One implementation instead of a hand-rolled copy per
// package, so the aliasing rules are stated — and tested — once.
//
// The contract: Grow and GrowZero return a slice of length n backed by
// buf's array whenever cap(buf) >= n, so a warmed buffer is never
// re-allocated and pointers into it stay valid across calls that shrink
// and re-grow it. Callers own the backing array; two live slices from
// the same buffer alias.
package slab

// Grow returns buf resized to length n, reallocating only when capacity
// is insufficient. Contents are unspecified; callers overwrite or clear.
func Grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// GrowZero returns buf resized to length n with every element zeroed.
func GrowZero[T any](buf []T, n int) []T {
	buf = Grow(buf, n)
	clear(buf)
	return buf
}
