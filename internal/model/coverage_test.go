package model

import (
	"strings"
	"testing"

	"eflora/internal/geo"
	"eflora/internal/lora"
)

func TestSFRingsOrdering(t *testing.T) {
	env := LoSPathLoss(903e6, 2.7)
	rings := SFRings(env, 14)
	prev := 0.0
	for _, s := range lora.SFs() {
		r := rings[s]
		if r <= prev {
			t.Fatalf("%v ring %v not larger than previous %v", s, r, prev)
		}
		prev = r
	}
	// Each SF step buys ~2.5-3 dB, i.e. a ring-radius ratio of
	// 10^(3/(10*2.7)) ≈ 1.29.
	ratio := rings[lora.SF8] / rings[lora.SF7]
	if ratio < 1.2 || ratio > 1.4 {
		t.Errorf("SF8/SF7 ring ratio = %v, want ~1.29", ratio)
	}
}

func TestSFRingsGrowWithPower(t *testing.T) {
	env := LoSPathLoss(903e6, 2.7)
	lo := SFRings(env, 2)
	hi := SFRings(env, 14)
	for _, s := range lora.SFs() {
		if hi[s] <= lo[s] {
			t.Errorf("%v: ring at 14 dBm (%v) not beyond 2 dBm (%v)", s, hi[s], lo[s])
		}
	}
}

func TestCoverageAccountsForEveryDevice(t *testing.T) {
	net := testNetwork(200, 3, 97)
	p := DefaultParams()
	rep := Coverage(net, p)
	total := rep.Unreachable
	for _, c := range rep.MinFeasible {
		total += c
	}
	if total != 200 {
		t.Errorf("coverage accounts for %d of 200 devices", total)
	}
}

func TestCoverageUnreachable(t *testing.T) {
	net := &Network{
		Devices:  []geo.Point{{X: 100, Y: 0}, {X: 90000, Y: 0}},
		Gateways: []geo.Point{{}},
	}
	p := DefaultParams()
	rep := Coverage(net, p)
	if rep.Unreachable != 1 {
		t.Errorf("unreachable = %d, want 1", rep.Unreachable)
	}
	if rep.MinFeasible[lora.SF7] != 1 {
		t.Errorf("near device should be SF7-bound: %v", rep.MinFeasible)
	}
	s := rep.String()
	if !strings.Contains(s, "unreachable: 1") || !strings.Contains(s, "SF7") {
		t.Errorf("report text malformed:\n%s", s)
	}
}
