package model

import (
	"testing"

	"eflora/internal/geo"
)

func TestNetworkSubset(t *testing.T) {
	net := &Network{
		Devices:   []geo.Point{{X: 0}, {X: 1}, {X: 2}, {X: 3}},
		Gateways:  []geo.Point{{}, {Y: 100}},
		Env:       []int{0, 1, 0, 1},
		IntervalS: []float64{10, 20, 30, 40},
	}
	sub := net.Subset([]int{3, 1})
	if sub.N() != 2 || sub.G() != 2 {
		t.Fatalf("subset N=%d G=%d, want 2, 2", sub.N(), sub.G())
	}
	if sub.Devices[0].X != 3 || sub.Devices[1].X != 1 {
		t.Fatalf("subset devices %v out of order", sub.Devices)
	}
	if sub.Env[0] != 1 || sub.Env[1] != 1 {
		t.Fatalf("subset env %v did not follow devices", sub.Env)
	}
	if sub.IntervalS[0] != 40 || sub.IntervalS[1] != 20 {
		t.Fatalf("subset intervals %v did not follow devices", sub.IntervalS)
	}
	// Mutating the subset's devices must not touch the parent.
	sub.Devices[0].X = -99
	if net.Devices[3].X != 3 {
		t.Fatal("subset shares device storage with parent")
	}
}

func TestNetworkSubsetNilAttributes(t *testing.T) {
	net := &Network{
		Devices:  []geo.Point{{X: 0}, {X: 1}},
		Gateways: []geo.Point{{}},
	}
	sub := net.Subset([]int{0})
	if sub.Env != nil || sub.IntervalS != nil {
		t.Fatal("nil attributes should stay nil in subsets")
	}
	if sub.EnvOf(0) != 0 {
		t.Fatal("EnvOf on subset with nil Env")
	}
}
