package model

import (
	"eflora/internal/lora"
)

// bestGain returns the largest device→gateway attenuation for device i,
// i.e. the gain toward its best (usually nearest) gateway.
func bestGain(gains [][]float64, i int) float64 {
	best := 0.0
	for _, g := range gains[i] {
		if g > best {
			best = g
		}
	}
	return best
}

// MinFeasibleSF returns the smallest spreading factor at which device i,
// transmitting at tpDBm, is received above the corresponding sensitivity by
// at least one gateway (mean channel, no fading margin). ok is false when
// even SF12 cannot close the link at that power.
func MinFeasibleSF(gains [][]float64, i int, tpDBm float64) (lora.SF, bool) {
	g := bestGain(gains, i)
	if g <= 0 {
		return lora.MaxSF, false
	}
	rxDBm := tpDBm + lora.LinearToDB(g)
	return lora.MinSFForDistance(rxDBm)
}

// MinFeasibleTP returns the lowest transmission power level of the plan at
// which device i can reach at least one gateway using spreading factor s.
// ok is false when even the maximum power is insufficient.
func MinFeasibleTP(gains [][]float64, i int, s lora.SF, plan lora.Plan) (float64, bool) {
	g := bestGain(gains, i)
	if g <= 0 {
		return plan.MaxTxPowerDBm, false
	}
	need := lora.SensitivityDBm(s) - lora.LinearToDB(g)
	// Walk the plan's power ladder with the same accumulation
	// TxPowerLevels uses, so the returned level is bit-identical to a
	// scan of that slice without materializing it (this sits on the
	// per-device path of every baseline allocator).
	if plan.TxPowerStepDBm <= 0 {
		if plan.MaxTxPowerDBm >= need {
			return plan.MaxTxPowerDBm, true
		}
		return plan.MaxTxPowerDBm, false
	}
	for tp := plan.MinTxPowerDBm; tp <= plan.MaxTxPowerDBm+1e-9; tp += plan.TxPowerStepDBm {
		if tp >= need {
			return tp, true
		}
	}
	return plan.MaxTxPowerDBm, false
}

// ReachableGateways returns the indices of gateways that receive device i
// above the sensitivity of spreading factor s when transmitting at tpDBm.
func ReachableGateways(gains [][]float64, i int, s lora.SF, tpDBm float64) []int {
	ssMW := lora.DBmToMilliwatts(lora.SensitivityDBm(s))
	tpMW := lora.DBmToMilliwatts(tpDBm)
	var out []int
	for k, g := range gains[i] {
		if tpMW*g >= ssMW {
			out = append(out, k)
		}
	}
	return out
}

// Feasible reports whether device i reaches at least one gateway with
// spreading factor s at power tpDBm.
func Feasible(gains [][]float64, i int, s lora.SF, tpDBm float64) bool {
	g := bestGain(gains, i)
	if g <= 0 {
		return false
	}
	return tpDBm+lora.LinearToDB(g) >= lora.SensitivityDBm(s)
}
