package model

import (
	"fmt"
	"math"

	"eflora/internal/lora"
	"eflora/internal/mathx"
)

// Mode selects how the evaluator computes the co-SF interference term of
// the PDR.
type Mode int

const (
	// ModeExact models the paper's collision rule directly: a packet
	// survives at a gateway only if no co-SF co-channel transmission that
	// is visible to that gateway overlaps it in time (the unslotted-ALOHA
	// vulnerable window), matching what the packet simulator implements.
	ModeExact Mode = iota + 1
	// ModePPP is the paper's reduced-overhead formulation (Eq. 18-20):
	// co-SF interference enters the SNR through the Laplace transform of
	// a Poisson point process of the group's density.
	ModePPP
)

// group aggregates the devices sharing one (SF, channel) pair.
type group struct {
	count   int
	members map[int]struct{}
	// sumPG[k] = Σ_{j in group} p_j·gain_{j,k} (mW): the mean co-channel
	// power used by the inter-SF soft-interference extension.
	sumPG []float64
	// visSum[k] = Σ_j vis_{j,k} and qSum[k] = Σ_j α_j·vis_{j,k}: the
	// collision-exposure sums of the hard overlap rule.
	visSum, qSum []float64
	// minEE over members; +Inf when empty. Kept fresh by SetDevice and
	// RecomputeAll, so read paths never have to refresh it.
	minEE    float64
	minIndex int
}

// Evaluator computes per-device energy efficiency (paper Eq. 17/18) for a
// network under an allocation, with O(G)-per-device incremental updates so
// the greedy allocator can evaluate candidate re-allocations cheaply.
//
// An Evaluator is not safe for concurrent mutation, but the read-only
// methods — EE, EEAll, PRR, MinEE, MinEEIf, MinEEIfAbove, Allocation —
// never write to the evaluator and may be called from multiple goroutines
// at once, as long as no SetDevice or RecomputeAll runs concurrently.
// The parallel candidate scan of the EF-LoRa greedy relies on this:
// workers share one evaluator as a read-only snapshot, and the winning
// candidate is committed sequentially afterward.
type Evaluator struct {
	net  *Network
	p    Params
	mode Mode

	n, g, nch int

	// Static caches.
	gain    [][]float64 // [device][gateway] linear attenuation
	toaBySF map[lora.SF]float64
	thLin   map[lora.SF]float64 // linear SNR threshold
	ssMW    map[lora.SF]float64 // sensitivity in mW
	noiseMW float64
	lbits   float64
	density float64 // devices per m² (for ModePPP)

	// Current assignment.
	sf    []lora.SF
	tpDBm []float64
	tpMW  []float64
	ch    []int
	alpha []float64   // duty cycle T_i / T_g
	es    []float64   // energy per transmission attempt (J)
	vis   [][]float64 // [device][gateway] P{signal clears sensitivity}
	q     [][]float64 // [device][gateway] α·vis, the capacity trial prob

	groups [][]*group // [sfIndex][channel]
	chSum  [][]float64
	capDP  []*mathx.PoissonBinomial

	interSFRej float64 // linear rejection factor; 0 disables

	ee []float64
}

// NewEvaluator builds an evaluator for the given network, parameters and
// initial allocation. The mode selects exact or PPP interference handling.
func NewEvaluator(net *Network, p Params, alloc Allocation, mode Mode) (*Evaluator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := net.Validate(p); err != nil {
		return nil, err
	}
	if err := alloc.Validate(net.N(), p); err != nil {
		return nil, err
	}
	if mode != ModeExact && mode != ModePPP {
		return nil, fmt.Errorf("model: invalid mode %d", mode)
	}
	e := &Evaluator{
		net:  net,
		p:    p,
		mode: mode,
		n:    net.N(),
		g:    net.G(),
		nch:  p.Plan.NumChannels(),
	}
	e.lbits = p.AppPayloadBits()
	e.noiseMW = lora.DBmToMilliwatts(p.NoiseDBm)
	if p.InterSFRejectionDB > 0 {
		e.interSFRej = lora.DBToLinear(-p.InterSFRejectionDB)
	}
	e.toaBySF = make(map[lora.SF]float64, 6)
	e.thLin = make(map[lora.SF]float64, 6)
	e.ssMW = make(map[lora.SF]float64, 6)
	for _, s := range lora.SFs() {
		e.toaBySF[s] = p.TimeOnAir(s)
		e.thLin[s] = lora.DBToLinear(lora.SNRThresholdDB(s))
		e.ssMW[s] = lora.DBmToMilliwatts(lora.SensitivityDBm(s))
	}
	e.gain = Gains(net, p)
	e.density = deviceDensity(net)

	e.sf = make([]lora.SF, e.n)
	e.tpDBm = make([]float64, e.n)
	e.tpMW = make([]float64, e.n)
	e.ch = make([]int, e.n)
	e.alpha = make([]float64, e.n)
	e.es = make([]float64, e.n)
	e.vis = make([][]float64, e.n)
	e.q = make([][]float64, e.n)
	// One backing array for all vis/q rows: per-row make calls were half
	// the allocator's per-evaluator allocation count.
	visq := make([]float64, 2*e.n*e.g)
	for i := 0; i < e.n; i++ {
		e.vis[i] = visq[2*i*e.g : (2*i+1)*e.g : (2*i+1)*e.g]
		e.q[i] = visq[(2*i+1)*e.g : (2*i+2)*e.g : (2*i+2)*e.g]
	}
	e.ee = make([]float64, e.n)
	copy(e.sf, alloc.SF)
	copy(e.tpDBm, alloc.TPdBm)
	copy(e.ch, alloc.Channel)

	e.groups = make([][]*group, 6)
	for si := range e.groups {
		e.groups[si] = make([]*group, e.nch)
		for c := range e.groups[si] {
			e.groups[si][c] = &group{
				members:  make(map[int]struct{}),
				sumPG:    make([]float64, e.g),
				visSum:   make([]float64, e.g),
				qSum:     make([]float64, e.g),
				minEE:    math.Inf(1),
				minIndex: -1,
			}
		}
	}
	e.chSum = make([][]float64, e.nch)
	for c := range e.chSum {
		e.chSum[c] = make([]float64, e.g)
	}

	for i := 0; i < e.n; i++ {
		e.tpMW[i] = lora.DBmToMilliwatts(e.tpDBm[i])
		toa := e.toaBySF[e.sf[i]]
		interval := p.IntervalFor(net, i, e.sf[i])
		e.alpha[i] = math.Min(1, toa/interval)
		e.es[i] = p.Profile.TransmissionEnergy(e.tpDBm[i], toa)
		gr := e.groupOf(e.sf[i], e.ch[i])
		gr.count++
		gr.members[i] = struct{}{}
		for k := 0; k < e.g; k++ {
			v := e.visibility(i, k, e.sf[i], e.tpMW[i])
			e.vis[i][k] = v
			e.q[i][k] = e.alpha[i] * v
			gr.sumPG[k] += e.tpMW[i] * e.gain[i][k]
			gr.visSum[k] += v
			gr.qSum[k] += e.q[i][k]
			e.chSum[e.ch[i]][k] += e.tpMW[i] * e.gain[i][k]
		}
	}
	e.capDP = make([]*mathx.PoissonBinomial, e.g)
	for k := 0; k < e.g; k++ {
		e.capDP[k] = mathx.NewPoissonBinomial(e.p.GatewayCapacity)
	}
	e.rebuildCapacity()
	e.RecomputeAll()
	return e, nil
}

// deviceDensity estimates devices per square meter from the deployment's
// bounding circle around its centroid.
func deviceDensity(net *Network) float64 {
	var cx, cy float64
	for _, d := range net.Devices {
		cx += d.X
		cy += d.Y
	}
	nf := float64(len(net.Devices))
	cx /= nf
	cy /= nf
	maxR := 1.0
	for _, d := range net.Devices {
		r := math.Hypot(d.X-cx, d.Y-cy)
		if r > maxR {
			maxR = r
		}
	}
	return nf / (math.Pi * maxR * maxR)
}

func sfIndex(s lora.SF) int { return int(s) - int(lora.SF7) }

func (e *Evaluator) groupOf(s lora.SF, c int) *group { return e.groups[sfIndex(s)][c] }

// visibility returns P{device i's signal clears gateway k's sensitivity
// for SF s under Rayleigh fading} = exp(-ss_s/(p·a)).
func (e *Evaluator) visibility(i, k int, s lora.SF, tpmw float64) float64 {
	pa := tpmw * e.gain[i][k]
	if pa <= 0 {
		return 0
	}
	return math.Exp(-e.ssMW[s] / pa)
}

// rebuildCapacity recomputes every per-gateway Poisson-binomial capacity
// distribution from scratch, clearing any numerical drift from incremental
// removals. The DP tables are allocated once in NewEvaluator and reset in
// place here, keeping refinement passes allocation-free.
func (e *Evaluator) rebuildCapacity() {
	for _, dp := range e.capDP {
		dp.Reset()
	}
	for i := 0; i < e.n; i++ {
		for k := 0; k < e.g; k++ {
			e.capDP[k].Add(e.q[i][k])
		}
	}
}

// eeCompute returns the energy efficiency of device i if it used (sf,
// tpmw) in a group of `total` devices, where collExposure(k) returns the
// group's (visSum, qSum) at gateway k excluding i's own contribution, and
// interSum(k) the co-channel other-SF mean power excluding i (used only
// when the inter-SF extension is on). The gateway-capacity factor excludes
// i's currently registered trial probability.
//
//eflora:hotpath
func (e *Evaluator) eeCompute(
	i int, sf lora.SF, tpmw float64, total int,
	collExposure func(k int) (visEx, qEx float64),
	interSum func(k int) float64, es float64,
) float64 {
	interval := e.p.IntervalFor(e.net, i, sf)
	alpha := math.Min(1, e.toaBySF[sf]/interval)
	th := e.thLin[sf]
	ss := e.ssMW[sf]
	floorMW := math.Max(th*e.noiseMW, ss)
	prodFail := 1.0
	// Collision survival is a SHARED event across gateways: an
	// overlapping co-group transmission occupies the same time slice at
	// every gateway where it is visible, so modelling it independently
	// per gateway (the paper's Eq. 5 assumption) overstates the
	// diversity gain. We apply one survival factor, weighting each
	// gateway's exposure by how much this device relies on it.
	var wSum, wExposure float64
	for k := 0; k < e.g; k++ {
		pa := tpmw * e.gain[i][k]
		if pa <= 0 {
			continue
		}
		var pdr float64
		if e.mode == ModePPP {
			// Paper Eq. 18: the Laplace transform of PPP interference of
			// the group's density takes the place of the explicit
			// collision term. h is the paper's Eq. 14 contention factor.
			h := 1 - math.Exp(-alpha*float64(total))
			lambdaSC := e.density * float64(total) / float64(e.n)
			env := e.p.Environments[e.net.EnvOf(i)]
			l := mathx.LaplacePPPInterference(th*h/pa, tpmw*env.Amplitude(), lambdaSC, env.Exponent)
			pdr = l * math.Exp(-floorMW/pa)
		} else {
			// Hard-collision model matching the simulator (and the
			// paper's stated rule): the packet survives only if no
			// visible co-SF co-channel transmission overlaps its
			// vulnerable window of ≈ T_i + T_j, i.e. per peer
			// probability (α_i + α_j)·vis_j, aggregated as
			// exp(-(α_i·Σvis + Σα_j·vis_j)).
			visEx, qEx := collExposure(k)
			visOwn := math.Exp(-ss / pa)
			wSum += visOwn
			wExposure += visOwn * (alpha*visEx + qEx)
			snrFloor := floorMW
			if e.interSFRej > 0 {
				// Imperfect-orthogonality extension: co-channel other-SF
				// power leaks into the SNR denominator, attenuated by
				// the rejection factor and scaled by the overlap
				// fraction.
				h := 1 - math.Exp(-alpha*float64(total))
				snrFloor = math.Max(th*(e.noiseMW+e.interSFRej*h*interSum(k)), ss)
			}
			pdr = math.Exp(-snrFloor / pa)
		}
		theta := e.capDP[k].ProbAtMostExcluding(e.q[i][k], e.p.GatewayCapacity-1)
		prodFail *= 1 - theta*pdr
	}
	prr := 1 - prodFail
	if e.mode == ModeExact && wSum > 0 {
		prr *= math.Exp(-wExposure / wSum)
	}
	if e.p.Objective == ObjectiveThroughput {
		// Future-work variant: delivered bits per second.
		return e.lbits * prr / interval
	}
	return e.lbits * prr / es
}

// eeOf computes device i's EE under the committed allocation.
//
//eflora:hotpath
func (e *Evaluator) eeOf(i int) float64 {
	gr := e.groupOf(e.sf[i], e.ch[i])
	c := e.ch[i]
	return e.eeCompute(i, e.sf[i], e.tpMW[i], gr.count,
		func(k int) (float64, float64) {
			return gr.visSum[k] - e.vis[i][k], gr.qSum[k] - e.q[i][k]
		},
		func(k int) float64 {
			return e.chSum[c][k] - gr.sumPG[k]
		},
		e.es[i])
}

// RecomputeAll refreshes every cached quantity: the capacity
// distributions, every device's EE and every group's minimum. Call it at
// allocator pass boundaries to flush the second-order staleness that
// incremental updates leave in the capacity factor.
func (e *Evaluator) RecomputeAll() {
	e.rebuildCapacity()
	for si := range e.groups {
		for _, gr := range e.groups[si] {
			gr.minEE = math.Inf(1)
			gr.minIndex = -1
		}
	}
	for i := 0; i < e.n; i++ {
		e.ee[i] = e.eeOf(i)
		gr := e.groupOf(e.sf[i], e.ch[i])
		if e.ee[i] < gr.minEE {
			gr.minEE = e.ee[i]
			gr.minIndex = i
		}
	}
}

// refreshGroup recomputes EE for every member of the group and its min.
//
//eflora:hotpath
func (e *Evaluator) refreshGroup(gr *group) {
	gr.minEE = math.Inf(1)
	gr.minIndex = -1
	// Every member is visited exactly once and ties on minEE break toward
	// the lowest device index, so the outcome does not depend on Go's
	// randomized map order (RecomputeAll, which iterates devices in
	// ascending order, must agree with this on exact-EE ties).
	//eflora:nondeterminism-ok order-independent: all members updated; min tie-broken on device index
	for i := range gr.members {
		e.ee[i] = e.eeOf(i)
		if e.ee[i] < gr.minEE || (e.ee[i] == gr.minEE && i < gr.minIndex) {
			gr.minEE = e.ee[i]
			gr.minIndex = i
		}
	}
}

// EE returns the cached energy efficiency of device i in bits per joule.
func (e *Evaluator) EE(i int) float64 { return e.ee[i] }

// EEAll returns a copy of all cached per-device energy efficiencies.
func (e *Evaluator) EEAll() []float64 {
	out := make([]float64, e.n)
	copy(out, e.ee)
	return out
}

// MinEE returns the network's minimum energy efficiency and the device
// attaining it — the objective of the paper's Eq. 1.
func (e *Evaluator) MinEE() (float64, int) {
	min, idx := math.Inf(1), -1
	for si := range e.groups {
		for _, gr := range e.groups[si] {
			if gr.minEE < min {
				min, idx = gr.minEE, gr.minIndex
			}
		}
	}
	return min, idx
}

// Assignment returns device i's committed (SF, TP dBm, channel) without
// snapshotting the whole allocation — the greedy's inner loop only needs
// the device it is about to re-optimize.
func (e *Evaluator) Assignment(i int) (lora.SF, float64, int) {
	return e.sf[i], e.tpDBm[i], e.ch[i]
}

// Allocation returns a snapshot of the committed allocation.
func (e *Evaluator) Allocation() Allocation {
	a := Allocation{
		SF:      make([]lora.SF, e.n),
		TPdBm:   make([]float64, e.n),
		Channel: make([]int, e.n),
	}
	copy(a.SF, e.sf)
	copy(a.TPdBm, e.tpDBm)
	copy(a.Channel, e.ch)
	return a
}

// MinEEIf evaluates the network minimum EE if device i were reassigned to
// (sf, tpDBm, ch), without committing the change. The capacity factor θ is
// held at its committed value (a second-order effect refreshed by
// RecomputeAll at pass boundaries).
func (e *Evaluator) MinEEIf(i int, sf lora.SF, tpDBm float64, ch int) float64 {
	return e.MinEEIfAbove(i, sf, tpDBm, ch, math.Inf(-1))
}

// MinEEIfAbove is MinEEIf with an early-abort threshold: as soon as the
// running minimum falls to the threshold or below, it returns immediately
// with that value. The greedy allocator only cares whether a candidate
// beats the current best, so most candidates are rejected after O(G) work
// instead of a full scan of the affected groups.
//
//eflora:hotpath
func (e *Evaluator) MinEEIfAbove(i int, sf lora.SF, tpDBm float64, ch int, threshold float64) float64 {
	oldGr := e.groupOf(e.sf[i], e.ch[i])
	newGr := e.groupOf(sf, ch)
	tpmw := lora.DBmToMilliwatts(tpDBm)
	toa := e.toaBySF[sf]
	es := e.p.Profile.TransmissionEnergy(tpDBm, toa)
	interval := e.p.IntervalFor(e.net, i, sf)
	alphaNew := math.Min(1, toa/interval)
	oldCh, newCh := e.ch[i], ch
	same := oldGr == newGr

	// The candidate's per-gateway visibility under the new assignment.
	visNew := func(k int) float64 { return e.visibility(i, k, sf, tpmw) }
	qNew := func(k int) float64 { return alphaNew * visNew(k) }
	ownPGOld := func(k int) float64 { return e.tpMW[i] * e.gain[i][k] }
	ownPGNew := func(k int) float64 { return tpmw * e.gain[i][k] }

	// Candidate EE of device i itself: exclude its own (old or new)
	// contribution from the new group's exposure sums.
	newCount := newGr.count + 1
	if same {
		newCount = newGr.count
	}
	collI := func(k int) (float64, float64) {
		v, q := newGr.visSum[k], newGr.qSum[k]
		if same {
			v -= e.vis[i][k]
			q -= e.q[i][k]
		}
		return v, q
	}
	interI := func(k int) float64 {
		s := e.chSum[newCh][k] - newGr.sumPG[k]
		if !same && oldCh == newCh {
			s -= ownPGOld(k)
		}
		return s
	}
	min := e.eeCompute(i, sf, tpmw, newCount, collI, interI, es)
	if min <= threshold {
		return min
	}

	// Fold in the untouched groups' cached minima before the expensive
	// member scans: if any of them is already at or below the threshold
	// the candidate cannot win and we bail out after O(1) work per group.
	// When the inter-SF extension is enabled, co-channel groups of other
	// SFs are also perturbed; we accept their cached values here
	// (second-order, refreshed on commit) to keep candidate evaluation
	// O(affected).
	for si := range e.groups {
		for _, gr := range e.groups[si] {
			if gr == oldGr || gr == newGr {
				continue
			}
			if gr.minEE < min {
				min = gr.minEE
				if min <= threshold {
					return min
				}
			}
		}
	}

	if !same {
		// Members of the old group (i leaves): count-1, exposure minus
		// i's old contribution. Iterating the member set in map order is
		// safe here and below: without early abort the full scan computes
		// an order-independent minimum, and when the threshold aborts the
		// scan the caller discards the exact value (any return <= its
		// threshold means "candidate rejected").
		oldCount := oldGr.count - 1
		//eflora:nondeterminism-ok order-independent min; early-abort returns are only compared against the threshold
		for j := range oldGr.members {
			if j == i {
				continue
			}
			//eflora:alloc-ok non-escaping callback: eeCompute never retains it, proven zero-alloc by TestEvaluatorAllocBudget
			collJ := func(k int) (float64, float64) {
				return oldGr.visSum[k] - e.vis[i][k] - e.vis[j][k],
					oldGr.qSum[k] - e.q[i][k] - e.q[j][k]
			}
			// chSum[oldCh] loses i's old power and the group sum loses it
			// too, so the other-SF remainder keeps its value — except
			// that when i stays on the same channel with a new SF, its
			// new power arrives as other-SF interference.
			//eflora:alloc-ok non-escaping callback: eeCompute never retains it, proven zero-alloc by TestEvaluatorAllocBudget
			interJ := func(k int) float64 {
				s := e.chSum[oldCh][k] - oldGr.sumPG[k]
				if newCh == oldCh {
					s += ownPGNew(k)
				}
				return s
			}
			ee := e.eeCompute(j, e.sf[j], e.tpMW[j], oldCount, collJ, interJ, e.es[j])
			if ee < min {
				min = ee
				if min <= threshold {
					return min
				}
			}
		}
		// Members of the new group (i joins).
		//eflora:nondeterminism-ok order-independent min; early-abort returns are only compared against the threshold
		for j := range newGr.members {
			//eflora:alloc-ok non-escaping callback: eeCompute never retains it, proven zero-alloc by TestEvaluatorAllocBudget
			collJ := func(k int) (float64, float64) {
				return newGr.visSum[k] + visNew(k) - e.vis[j][k],
					newGr.qSum[k] + qNew(k) - e.q[j][k]
			}
			// chSum[newCh] gains i's new power and the group sum gains it
			// too, cancelling out — but when i left the same channel
			// (different SF), its old other-SF power disappears.
			//eflora:alloc-ok non-escaping callback: eeCompute never retains it, proven zero-alloc by TestEvaluatorAllocBudget
			interJ := func(k int) float64 {
				s := e.chSum[newCh][k] - newGr.sumPG[k]
				if oldCh == newCh {
					s -= ownPGOld(k)
				}
				return s
			}
			ee := e.eeCompute(j, e.sf[j], e.tpMW[j], newCount, collJ, interJ, e.es[j])
			if ee < min {
				min = ee
				if min <= threshold {
					return min
				}
			}
		}
	} else {
		// Same group, possibly different TP: peers see i's exposure
		// change.
		//eflora:nondeterminism-ok order-independent min; early-abort returns are only compared against the threshold
		for j := range newGr.members {
			if j == i {
				continue
			}
			//eflora:alloc-ok non-escaping callback: eeCompute never retains it, proven zero-alloc by TestEvaluatorAllocBudget
			collJ := func(k int) (float64, float64) {
				return newGr.visSum[k] - e.vis[i][k] + visNew(k) - e.vis[j][k],
					newGr.qSum[k] - e.q[i][k] + qNew(k) - e.q[j][k]
			}
			// chSum gains (new-old) and the group sum gains the same, so
			// the other-SF remainder is unchanged.
			//eflora:alloc-ok non-escaping callback: eeCompute never retains it, proven zero-alloc by TestEvaluatorAllocBudget
			interJ := func(k int) float64 {
				return e.chSum[newCh][k] - newGr.sumPG[k]
			}
			ee := e.eeCompute(j, e.sf[j], e.tpMW[j], newCount, collJ, interJ, e.es[j])
			if ee < min {
				min = ee
				if min <= threshold {
					return min
				}
			}
		}
	}
	return min
}

// SetDevice commits a reassignment of device i and refreshes the caches of
// the affected groups. It returns an error for invalid arguments.
//
//eflora:hotpath
func (e *Evaluator) SetDevice(i int, sf lora.SF, tpDBm float64, ch int) error {
	if i < 0 || i >= e.n {
		return fmt.Errorf("model: device index %d out of range", i)
	}
	if !sf.Valid() {
		return fmt.Errorf("model: invalid SF %d", int(sf))
	}
	if ch < 0 || ch >= e.nch {
		return fmt.Errorf("model: channel %d out of range", ch)
	}
	if tpDBm < e.p.Plan.MinTxPowerDBm-1e-9 || tpDBm > e.p.Plan.MaxTxPowerDBm+1e-9 {
		return fmt.Errorf("model: TP %v outside plan range", tpDBm)
	}
	oldGr := e.groupOf(e.sf[i], e.ch[i])
	newGr := e.groupOf(sf, ch)
	oldCh := e.ch[i]
	tpmw := lora.DBmToMilliwatts(tpDBm)

	// Remove i's old footprint.
	for k := 0; k < e.g; k++ {
		pg := e.tpMW[i] * e.gain[i][k]
		oldGr.sumPG[k] -= pg
		oldGr.visSum[k] -= e.vis[i][k]
		oldGr.qSum[k] -= e.q[i][k]
		e.chSum[oldCh][k] -= pg
		e.capDP[k].Remove(e.q[i][k])
	}
	oldGr.count--
	delete(oldGr.members, i)

	// Apply the new assignment.
	e.sf[i] = sf
	e.tpDBm[i] = tpDBm
	e.tpMW[i] = tpmw
	e.ch[i] = ch
	toa := e.toaBySF[sf]
	interval := e.p.IntervalFor(e.net, i, sf)
	e.alpha[i] = math.Min(1, toa/interval)
	e.es[i] = e.p.Profile.TransmissionEnergy(tpDBm, toa)
	for k := 0; k < e.g; k++ {
		pg := tpmw * e.gain[i][k]
		v := e.visibility(i, k, sf, tpmw)
		e.vis[i][k] = v
		e.q[i][k] = e.alpha[i] * v
		newGr.sumPG[k] += pg
		newGr.visSum[k] += v
		newGr.qSum[k] += e.q[i][k]
		e.chSum[ch][k] += pg
		e.capDP[k].Add(e.q[i][k])
	}
	newGr.count++
	newGr.members[i] = struct{}{}

	e.refreshGroup(oldGr)
	if newGr != oldGr {
		e.refreshGroup(newGr)
	}
	return nil
}

// PRR returns the packet reception ratio implied by device i's cached
// metric: for the energy-efficiency objective PRR = EE · E_s / L
// (inverting Eq. 2); for the throughput objective PRR = T · T_g / L.
func (e *Evaluator) PRR(i int) float64 {
	if e.p.Objective == ObjectiveThroughput {
		interval := e.p.IntervalFor(e.net, i, e.sf[i])
		return e.ee[i] * interval / e.lbits
	}
	return e.ee[i] * e.es[i] / e.lbits
}
