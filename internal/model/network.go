package model

import (
	"fmt"

	"eflora/internal/geo"
	"eflora/internal/lora"
	"eflora/internal/radio"
)

// Params holds everything about a LoRa network that is not the positions of
// its nodes: the channel plan, PHY configuration, traffic pattern, path-loss
// environment classes and the device energy profile.
type Params struct {
	// Plan is the regional channel plan (channels + TX power levels).
	Plan lora.Plan
	// BandwidthHz of the uplink channels (the paper fixes 125 kHz).
	BandwidthHz float64
	// CodingRate of the FEC (the paper fixes 4/7).
	CodingRate lora.CodingRate
	// PHYPayloadBytes is the radio payload per packet (paper: 21 bytes).
	PHYPayloadBytes int
	// AppPayloadBytes is the useful data per packet, the L of Eq. 2
	// (paper: 8 bytes).
	AppPayloadBytes int
	// PacketIntervalS is the reporting period T_g in seconds; every device
	// sends one packet per interval (paper Section III-A).
	PacketIntervalS float64
	// TrafficDutyCycle, when positive, switches to duty-cycle-driven
	// traffic: every device reports every ToA(SF)/duty seconds, i.e. it
	// transmits at this fraction of airtime regardless of its spreading
	// factor — the paper's evaluation setting ("duty cycle was set to
	// 1%", the regulatory maximum). Under this model SF7 devices send
	// ~25x more packets than SF12 devices and collision load is
	// proportional to group population. Zero keeps the fixed
	// PacketIntervalS for everyone.
	TrafficDutyCycle float64
	// Environments lists the path-loss classes; a device's Env index in
	// Network selects one. At least one entry is required.
	Environments []PathLoss
	// NoiseDBm is the AWGN power N0 at the receiver in dBm over one
	// channel bandwidth (thermal floor + noise figure).
	NoiseDBm float64
	// GatewayCapacity is the number of packets a gateway can demodulate
	// concurrently (SX1301: 8).
	GatewayCapacity int
	// Profile is the device energy model.
	Profile radio.Profile
	// InterSFRejectionDB, when non-zero, enables the imperfect-orthogonality
	// extension (paper Section III-E): co-channel transmissions with a
	// different SF leak into the SNR denominator attenuated by this many dB
	// (a positive value, e.g. 16).
	InterSFRejectionDB float64
	// Objective selects the per-device metric whose network minimum the
	// evaluator reports and the greedy allocator maximizes. The default
	// is the paper's energy efficiency; ObjectiveThroughput realizes the
	// throughput-fairness variant the paper lists as future work.
	Objective Objective
}

// Objective is the max-min optimization target.
type Objective int

const (
	// ObjectiveEnergyEfficiency is the paper's metric: delivered bits per
	// joule (the zero value, so existing configurations keep it).
	ObjectiveEnergyEfficiency Objective = iota
	// ObjectiveThroughput optimizes delivered bits per second instead —
	// L·PRR/T_g, the paper's future-work throughput fairness.
	ObjectiveThroughput
)

// DefaultParams returns the configuration of the paper's evaluation:
// US915 sub-band 1 (902.3-903.7 MHz), 125 kHz, CR 4/7, 8-byte application
// payload in a 21-byte PHY payload, suburban LoS path loss with β = 2.7,
// an SX1301-class 8-packet gateway and the Casals energy profile. The
// default reporting interval keeps SF12 devices at the 1% regulatory duty
// cycle.
func DefaultParams() Params {
	const freq = 903e6
	plan := lora.US915Sub1()
	// The paper's evaluation treats 14 dBm as the largest transmission
	// power (its Fig. 9 ablation pins "the largest transmission power,
	// 14 dBm") even on the US915 band, so the default plan caps there;
	// US915 hardware may go to 20 dBm (lora.US915Sub1 keeps that limit).
	plan.MaxTxPowerDBm = 14
	return Params{
		Plan:            plan,
		BandwidthHz:     125e3,
		CodingRate:      lora.CR47,
		PHYPayloadBytes: 21,
		AppPayloadBytes: 8,
		PacketIntervalS: 181, // SF12 air time ~1.81 s -> 1% duty cycle
		Environments:    []PathLoss{LoSPathLoss(freq, 2.7)},
		NoiseDBm:        -117, // -174 + 10log10(125e3) + 6 dB noise figure
		GatewayCapacity: 8,
		Profile:         radio.DefaultProfile(),
	}
}

// Validate checks internal consistency.
func (p Params) Validate() error {
	if err := p.Plan.Validate(); err != nil {
		return err
	}
	if p.BandwidthHz <= 0 {
		return fmt.Errorf("model: bandwidth %v must be positive", p.BandwidthHz)
	}
	if !p.CodingRate.Valid() {
		return fmt.Errorf("model: invalid coding rate %d", int(p.CodingRate))
	}
	if p.PHYPayloadBytes <= 0 || p.AppPayloadBytes <= 0 {
		return fmt.Errorf("model: payload sizes must be positive")
	}
	if p.AppPayloadBytes > p.PHYPayloadBytes {
		return fmt.Errorf("model: app payload %dB exceeds PHY payload %dB",
			p.AppPayloadBytes, p.PHYPayloadBytes)
	}
	if p.PacketIntervalS <= 0 {
		return fmt.Errorf("model: packet interval must be positive")
	}
	if p.TrafficDutyCycle < 0 || p.TrafficDutyCycle > 0.5 {
		return fmt.Errorf("model: traffic duty cycle %v outside [0, 0.5]", p.TrafficDutyCycle)
	}
	if p.Objective != ObjectiveEnergyEfficiency && p.Objective != ObjectiveThroughput {
		return fmt.Errorf("model: invalid objective %d", int(p.Objective))
	}
	if len(p.Environments) == 0 {
		return fmt.Errorf("model: at least one path-loss environment is required")
	}
	for i, env := range p.Environments {
		if err := env.Validate(); err != nil {
			return fmt.Errorf("environment %d: %w", i, err)
		}
	}
	if p.GatewayCapacity <= 0 {
		return fmt.Errorf("model: gateway capacity must be positive")
	}
	if p.InterSFRejectionDB < 0 {
		return fmt.Errorf("model: inter-SF rejection must be non-negative dB")
	}
	return nil
}

// AppPayloadBits returns L in bits, the numerator of Eq. 2.
func (p Params) AppPayloadBits() float64 { return float64(p.AppPayloadBytes) * 8 }

// TimeOnAir returns the air time of one packet at spreading factor s.
func (p Params) TimeOnAir(s lora.SF) float64 {
	return lora.TimeOnAir(p.PHYPayloadBytes, s, p.BandwidthHz, p.CodingRate)
}

// IntervalFor returns device i's reporting interval when using spreading
// factor s: a per-device override wins, then duty-cycle-driven traffic
// (ToA/duty), then the network-wide PacketIntervalS.
func (p Params) IntervalFor(net *Network, i int, s lora.SF) float64 {
	if net.IntervalS != nil {
		return net.IntervalS[i]
	}
	if p.TrafficDutyCycle > 0 {
		return p.TimeOnAir(s) / p.TrafficDutyCycle
	}
	return p.PacketIntervalS
}

// Network is a concrete deployment: device and gateway positions plus
// optional per-device attributes.
type Network struct {
	// Devices and Gateways are positions in meters.
	Devices  []geo.Point
	Gateways []geo.Point
	// Env optionally assigns each device a path-loss environment class
	// (index into Params.Environments). nil means class 0 for everyone.
	Env []int
	// IntervalS optionally overrides the reporting period per device
	// (paper Section III-E, "different transmission rates"). nil means
	// every device uses Params.PacketIntervalS.
	IntervalS []float64
}

// N returns the number of end devices.
func (n *Network) N() int { return len(n.Devices) }

// G returns the number of gateways.
func (n *Network) G() int { return len(n.Gateways) }

// EnvOf returns the environment class of device i.
func (n *Network) EnvOf(i int) int {
	if n.Env == nil {
		return 0
	}
	return n.Env[i]
}

// IntervalOf returns the reporting period of device i given the default.
func (n *Network) IntervalOf(i int, def float64) float64 {
	if n.IntervalS == nil {
		return def
	}
	return n.IntervalS[i]
}

// Subset returns a new network holding only the devices named by idx (in
// the given order), against the full gateway set. Per-device attributes
// (Env, IntervalS) follow their devices; the Gateways slice is shared, not
// copied, since deployments never mutate it. The hierarchical allocator
// uses this to hand one spatial cell to the exact greedy.
func (n *Network) Subset(idx []int) *Network {
	sub := &Network{
		Devices:  make([]geo.Point, len(idx)),
		Gateways: n.Gateways,
	}
	for j, i := range idx {
		sub.Devices[j] = n.Devices[i]
	}
	if n.Env != nil {
		sub.Env = make([]int, len(idx))
		for j, i := range idx {
			sub.Env[j] = n.Env[i]
		}
	}
	if n.IntervalS != nil {
		sub.IntervalS = make([]float64, len(idx))
		for j, i := range idx {
			sub.IntervalS[j] = n.IntervalS[i]
		}
	}
	return sub
}

// Validate checks the deployment against params.
func (n *Network) Validate(p Params) error {
	if len(n.Devices) == 0 {
		return fmt.Errorf("model: network has no devices")
	}
	if len(n.Gateways) == 0 {
		return fmt.Errorf("model: network has no gateways")
	}
	if n.Env != nil {
		if len(n.Env) != len(n.Devices) {
			return fmt.Errorf("model: Env length %d != devices %d", len(n.Env), len(n.Devices))
		}
		for i, e := range n.Env {
			if e < 0 || e >= len(p.Environments) {
				return fmt.Errorf("model: device %d has invalid environment %d", i, e)
			}
		}
	}
	if n.IntervalS != nil {
		if len(n.IntervalS) != len(n.Devices) {
			return fmt.Errorf("model: IntervalS length %d != devices %d", len(n.IntervalS), len(n.Devices))
		}
		for i, iv := range n.IntervalS {
			if iv <= 0 {
				return fmt.Errorf("model: device %d has non-positive interval", i)
			}
		}
	}
	return nil
}

// Allocation assigns each device its spreading factor, transmission power
// and channel — the (S, P, C) of the paper's optimization problem (Eq. 1).
type Allocation struct {
	SF      []lora.SF
	TPdBm   []float64
	Channel []int
}

// NewAllocation returns an allocation for n devices initialised to SF7,
// the minimum TX power of the given plan, and channel 0.
func NewAllocation(n int, plan lora.Plan) Allocation {
	a := Allocation{
		SF:      make([]lora.SF, n),
		TPdBm:   make([]float64, n),
		Channel: make([]int, n),
	}
	for i := 0; i < n; i++ {
		a.SF[i] = lora.SF7
		a.TPdBm[i] = plan.MinTxPowerDBm
	}
	return a
}

// Clone returns a deep copy.
func (a Allocation) Clone() Allocation {
	c := Allocation{
		SF:      make([]lora.SF, len(a.SF)),
		TPdBm:   make([]float64, len(a.TPdBm)),
		Channel: make([]int, len(a.Channel)),
	}
	copy(c.SF, a.SF)
	copy(c.TPdBm, a.TPdBm)
	copy(c.Channel, a.Channel)
	return c
}

// Validate checks the allocation against the paper's constraints C1-C3.
func (a Allocation) Validate(n int, p Params) error {
	if len(a.SF) != n || len(a.TPdBm) != n || len(a.Channel) != n {
		return fmt.Errorf("model: allocation sized %d/%d/%d for %d devices",
			len(a.SF), len(a.TPdBm), len(a.Channel), n)
	}
	for i := 0; i < n; i++ {
		if !a.SF[i].Valid() {
			return fmt.Errorf("model: device %d has invalid SF %d", i, int(a.SF[i]))
		}
		if a.TPdBm[i] < p.Plan.MinTxPowerDBm-1e-9 || a.TPdBm[i] > p.Plan.MaxTxPowerDBm+1e-9 {
			return fmt.Errorf("model: device %d TP %v outside [%v, %v]",
				i, a.TPdBm[i], p.Plan.MinTxPowerDBm, p.Plan.MaxTxPowerDBm)
		}
		if a.Channel[i] < 0 || a.Channel[i] >= p.Plan.NumChannels() {
			return fmt.Errorf("model: device %d channel %d outside [0, %d)",
				i, a.Channel[i], p.Plan.NumChannels())
		}
	}
	return nil
}
