// Package model implements the analytical multi-gateway LoRa network model
// of the paper's Section III: path loss (Eq. 9), co-SF interference and SNR
// (Eq. 8/16), ALOHA contention (Eq. 14-15), per-link packet delivery ratio
// under Rayleigh fading (Eq. 10), the gateway eight-packet capacity factor
// (Eq. 12), multi-gateway packet reception ratio (Eq. 13) and per-device
// energy efficiency (Eq. 17), including the fast Laplace-transform form on
// a Poisson point process (Eq. 18-20).
package model

import (
	"fmt"
	"math"
)

// SpeedOfLight in meters per second.
const SpeedOfLight = 299_792_458.0

// PathLoss is the attenuation model of paper Eq. 9 with an optional
// non-line-of-sight extension. The base attenuation is the literal power-law
// form the paper (and Georgiou & Raza) use,
//
//	a(d) = (c / (4π·f·d))^β,
//
// and an optional extra exponent kicks in beyond a breakpoint distance,
// modelling NLoS devices whose loss slope steepens after the first
// obstruction (asymptotic exponent β + extra). With ExtraExponent = 0 this
// is exactly Eq. 9.
type PathLoss struct {
	// FrequencyHz is the carrier frequency f.
	FrequencyHz float64
	// Exponent is the path-loss exponent β applied from the transmitter.
	Exponent float64
	// ExtraExponent adds additional slope beyond BreakpointM (NLoS).
	ExtraExponent float64
	// BreakpointM is where the extra slope starts; ignored when
	// ExtraExponent is 0.
	BreakpointM float64
}

// LoSPathLoss returns the paper's line-of-sight model: literal Eq. 9 with
// the given exponent (the paper uses β = 2.7 for suburban LoS).
func LoSPathLoss(freqHz, beta float64) PathLoss {
	return PathLoss{FrequencyHz: freqHz, Exponent: beta}
}

// NLoSPathLoss returns a non-line-of-sight model whose loss slope steepens
// to betaNLoS beyond the breakpoint. The paper quotes β = 4 for urban NLoS;
// applying that slope only beyond a breakpoint keeps the literal power-law
// form physical (Eq. 9 with β = 4 from d = 0 would cap coverage below
// 200 m).
func NLoSPathLoss(freqHz, betaLoS, betaNLoS, breakpointM float64) PathLoss {
	return PathLoss{
		FrequencyHz:   freqHz,
		Exponent:      betaLoS,
		ExtraExponent: betaNLoS - betaLoS,
		BreakpointM:   breakpointM,
	}
}

// Gain returns the linear attenuation factor a(d) in (0, 1] for a link of
// d meters. Distances below one meter are clamped to one meter so the
// near-field singularity of the power-law form cannot produce gains above
// the free-space value at 1 m.
func (pl PathLoss) Gain(d float64) float64 {
	if d < 1 {
		d = 1
	}
	ref := SpeedOfLight / (4 * math.Pi * pl.FrequencyHz)
	g := math.Pow(ref/d, pl.Exponent)
	if pl.ExtraExponent > 0 && d > pl.BreakpointM && pl.BreakpointM > 0 {
		g *= math.Pow(pl.BreakpointM/d, pl.ExtraExponent)
	}
	return g
}

// GainDB returns the attenuation in dB (a negative number).
func (pl PathLoss) GainDB(d float64) float64 {
	return 10 * math.Log10(pl.Gain(d))
}

// Amplitude returns the constant A of the power-law form a(d) ≈ A·d^{-β},
// i.e. (c/(4π·f))^β. The stochastic-geometry Laplace transform (paper
// Eq. 19) needs this amplitude to keep the attenuation function's units
// consistent; for NLoS models it approximates the base slope only.
func (pl PathLoss) Amplitude() float64 {
	return math.Pow(SpeedOfLight/(4*math.Pi*pl.FrequencyHz), pl.Exponent)
}

// MaxRange returns the largest distance at which a transmitter at tpDBm is
// received above rxFloorDBm, found by bisection. It returns 0 when even
// 1 m cannot close the link.
func (pl PathLoss) MaxRange(tpDBm, rxFloorDBm float64) float64 {
	rx := func(d float64) float64 { return tpDBm + pl.GainDB(d) }
	if rx(1) < rxFloorDBm {
		return 0
	}
	lo, hi := 1.0, 2.0
	for rx(hi) >= rxFloorDBm {
		hi *= 2
		if hi > 1e9 {
			return hi
		}
	}
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if rx(mid) >= rxFloorDBm {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Validate checks the model's parameters.
func (pl PathLoss) Validate() error {
	if pl.FrequencyHz <= 0 {
		return fmt.Errorf("model: path loss frequency %v must be positive", pl.FrequencyHz)
	}
	if pl.Exponent <= 0 {
		return fmt.Errorf("model: path loss exponent %v must be positive", pl.Exponent)
	}
	if pl.ExtraExponent < 0 {
		return fmt.Errorf("model: extra exponent %v must be non-negative", pl.ExtraExponent)
	}
	if pl.ExtraExponent > 0 && pl.BreakpointM <= 0 {
		return fmt.Errorf("model: extra exponent requires a positive breakpoint")
	}
	return nil
}
