package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGainDecreasesWithDistance(t *testing.T) {
	pl := LoSPathLoss(903e6, 2.7)
	prev := math.Inf(1)
	for d := 1.0; d <= 1e5; d *= 1.7 {
		g := pl.Gain(d)
		if g <= 0 || g >= prev {
			t.Fatalf("Gain(%v) = %v, previous %v", d, g, prev)
		}
		prev = g
	}
}

func TestGainSlopeMatchesExponent(t *testing.T) {
	// Doubling distance must cost exactly 10·β·log10(2) dB (Eq. 9).
	for _, beta := range []float64{2.4, 2.7, 3.0, 4.0} {
		pl := LoSPathLoss(903e6, beta)
		lossDB := pl.GainDB(1000) - pl.GainDB(2000)
		want := 10 * beta * math.Log10(2)
		if math.Abs(lossDB-want) > 1e-9 {
			t.Errorf("β=%v: doubling cost = %v dB, want %v", beta, lossDB, want)
		}
	}
}

func TestGainFreeSpaceAnchor(t *testing.T) {
	// With β=2 this is the Friis free-space loss: at 903 MHz and 1 km,
	// FSPL = 20log10(4πdf/c) ≈ 91.6 dB.
	pl := LoSPathLoss(903e6, 2)
	got := -pl.GainDB(1000)
	want := 20 * math.Log10(4*math.Pi*1000*903e6/SpeedOfLight)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("FSPL(1km) = %v dB, want %v", got, want)
	}
	if math.Abs(want-91.6) > 0.2 {
		t.Errorf("sanity: FSPL(1km, 903MHz) should be ~91.6 dB, formula gives %v", want)
	}
}

func TestNearFieldClamp(t *testing.T) {
	pl := LoSPathLoss(903e6, 2.7)
	if pl.Gain(0) != pl.Gain(1) || pl.Gain(0.01) != pl.Gain(1) {
		t.Error("distances below 1 m should clamp to the 1 m gain")
	}
}

func TestNLoSSteeperBeyondBreakpoint(t *testing.T) {
	los := LoSPathLoss(903e6, 2.7)
	nlos := NLoSPathLoss(903e6, 2.7, 4.0, 300)
	// Identical up to the breakpoint.
	if math.Abs(nlos.GainDB(200)-los.GainDB(200)) > 1e-9 {
		t.Error("NLoS should match LoS below the breakpoint")
	}
	// Beyond it, slope is 4: doubling from 1 km to 2 km costs 40log10(2).
	lossDB := nlos.GainDB(1000) - nlos.GainDB(2000)
	want := 10 * 4.0 * math.Log10(2)
	if math.Abs(lossDB-want) > 1e-9 {
		t.Errorf("NLoS doubling cost = %v dB, want %v", lossDB, want)
	}
	// And NLoS is strictly worse than LoS out there.
	if nlos.Gain(5000) >= los.Gain(5000) {
		t.Error("NLoS gain should be below LoS at 5 km")
	}
}

func TestMaxRange(t *testing.T) {
	pl := LoSPathLoss(903e6, 2.7)
	// The range should satisfy rx(range) == floor.
	r := pl.MaxRange(14, -123)
	rx := 14 + pl.GainDB(r)
	if math.Abs(rx-(-123)) > 1e-6 {
		t.Errorf("rx at MaxRange = %v, want -123", rx)
	}
	// SF7 at 14 dBm under β=2.7 reaches kilometers, not meters; this
	// anchors the scenario scale used by the experiments.
	if r < 1000 || r > 10000 {
		t.Errorf("SF7 range = %v m, want km-scale", r)
	}
	// SF12 reaches farther than SF7.
	r12 := pl.MaxRange(14, -137)
	if r12 <= r {
		t.Errorf("SF12 range %v should exceed SF7 range %v", r12, r)
	}
}

func TestMaxRangeMonotoneInPower(t *testing.T) {
	pl := LoSPathLoss(903e6, 2.7)
	f := func(raw uint8) bool {
		tp := 2 + float64(raw%12)
		return pl.MaxRange(tp+2, -130) > pl.MaxRange(tp, -130)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxRangeUnreachable(t *testing.T) {
	pl := NLoSPathLoss(903e6, 4.5, 6, 10)
	if r := pl.MaxRange(-100, -60); r != 0 {
		t.Errorf("unreachable link MaxRange = %v, want 0", r)
	}
}

func TestPathLossValidate(t *testing.T) {
	good := LoSPathLoss(903e6, 2.7)
	if err := good.Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	bad := []PathLoss{
		{FrequencyHz: 0, Exponent: 2.7},
		{FrequencyHz: 903e6, Exponent: 0},
		{FrequencyHz: 903e6, Exponent: 2.7, ExtraExponent: -1},
		{FrequencyHz: 903e6, Exponent: 2.7, ExtraExponent: 1.3, BreakpointM: 0},
	}
	for i, pl := range bad {
		if err := pl.Validate(); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
}
