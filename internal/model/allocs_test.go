package model

import (
	"testing"

	"eflora/internal/geo"
	"eflora/internal/lora"
	"eflora/internal/rng"
)

// TestEvaluatorAllocBudget pins the allocator's steady-state hot paths —
// candidate probes, commits and pass-boundary recomputes — to zero heap
// allocations per operation. The greedy performs millions of these per
// figure; a regression that re-introduces a per-call allocation (a map
// rebuild, an escaping closure, a fresh capacity distribution) fails here
// long before it shows up in wall-clock benchmarks.
func TestEvaluatorAllocBudget(t *testing.T) {
	r := rng.New(99)
	net := &Network{
		Devices:  geo.UniformDisc(300, 3500, r),
		Gateways: geo.GridGateways(3, 3500),
	}
	p := DefaultParams()
	a := NewAllocation(net.N(), p.Plan)
	tpLevels := p.Plan.TxPowerLevels()
	for i := range a.SF {
		a.SF[i] = lora.SF7 + lora.SF(r.Intn(6))
		a.TPdBm[i] = tpLevels[r.Intn(len(tpLevels))]
		a.Channel[i] = r.Intn(p.Plan.NumChannels())
	}
	ev, err := NewEvaluator(net, p, a, ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	cur, _ := ev.MinEE()
	nch := p.Plan.NumChannels()

	i := 0
	if got := testing.AllocsPerRun(50, func() {
		ev.MinEEIf(i%300, lora.SF7+lora.SF(i%6), tpLevels[i%len(tpLevels)], i%nch)
		ev.MinEEIfAbove(i%300, lora.SF7+lora.SF(i%6), tpLevels[i%len(tpLevels)], i%nch, cur)
		i++
	}); got > 0 {
		t.Errorf("MinEEIf + MinEEIfAbove allocate %v per pair, budget 0", got)
	}
	if got := testing.AllocsPerRun(20, func() {
		if err := ev.SetDevice(i%300, lora.SF7+lora.SF(i%6), tpLevels[i%len(tpLevels)], i%nch); err != nil {
			t.Fatal(err)
		}
		i++
	}); got > 0 {
		t.Errorf("SetDevice allocates %v per call, budget 0", got)
	}
	if got := testing.AllocsPerRun(5, func() { ev.RecomputeAll() }); got > 0 {
		t.Errorf("RecomputeAll allocates %v per call, budget 0", got)
	}
	if got := testing.AllocsPerRun(50, func() {
		Gains(net, p)
	}); got > 0 {
		t.Errorf("cached Gains allocates %v per call, budget 0", got)
	}
}
