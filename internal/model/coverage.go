package model

import (
	"fmt"
	"strings"

	"eflora/internal/lora"
)

// SFRings reports, for one path-loss environment and transmission power,
// the maximum distance at which each spreading factor still closes the
// link (mean channel, no fading margin) — the concentric coverage rings of
// the classic LoRa cell picture.
func SFRings(env PathLoss, tpDBm float64) map[lora.SF]float64 {
	rings := make(map[lora.SF]float64, 6)
	for _, s := range lora.SFs() {
		rings[s] = env.MaxRange(tpDBm, lora.SensitivityDBm(s))
	}
	return rings
}

// CoverageReport summarizes how a deployment maps onto SF rings.
type CoverageReport struct {
	// RingM is the max range per SF at maximum plan power.
	RingM map[lora.SF]float64
	// MinFeasible histograms devices by their minimum feasible SF;
	// Unreachable counts devices that cannot close a link at all.
	MinFeasible map[lora.SF]int
	Unreachable int
}

// Coverage analyses a network's feasibility structure under params.
func Coverage(net *Network, p Params) CoverageReport {
	gains := Gains(net, p)
	rep := CoverageReport{
		RingM:       SFRings(p.Environments[0], p.Plan.MaxTxPowerDBm),
		MinFeasible: make(map[lora.SF]int, 6),
	}
	for i := 0; i < net.N(); i++ {
		sf, ok := MinFeasibleSF(gains, i, p.Plan.MaxTxPowerDBm)
		if !ok {
			rep.Unreachable++
			continue
		}
		rep.MinFeasible[sf]++
	}
	return rep
}

// String renders the report.
func (r CoverageReport) String() string {
	var b strings.Builder
	b.WriteString("SF coverage rings (max plan power):\n")
	for _, s := range lora.SFs() {
		fmt.Fprintf(&b, "  %v: %.0f m, %d devices bound to it\n", s, r.RingM[s], r.MinFeasible[s])
	}
	if r.Unreachable > 0 {
		fmt.Fprintf(&b, "  unreachable: %d devices\n", r.Unreachable)
	}
	return b.String()
}
