package model

import (
	"flag"
	"fmt"
	"strings"
	"testing"

	"eflora/internal/geo"
	"eflora/internal/golden"
	"eflora/internal/lora"
	"eflora/internal/rng"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenEvaluator pins the analytical model's outputs to bit-exact
// digests: the EE vector of a fresh evaluator, a deterministic sequence
// of MinEEIf candidate probes, and the EE vector after a burst of
// committed SetDevice reassignments. The evaluator's scratch-buffer and
// closure-elimination optimizations must not move a single bit here.
func TestGoldenEvaluator(t *testing.T) {
	r := rng.New(99)
	net := &Network{
		Devices:  geo.UniformDisc(80, 3500, r),
		Gateways: geo.GridGateways(3, 3500),
	}
	p := DefaultParams()
	p.InterSFRejectionDB = 16 // exercise the inter-SF extension paths too
	a := NewAllocation(net.N(), p.Plan)
	tpLevels := p.Plan.TxPowerLevels()
	for i := range a.SF {
		a.SF[i] = lora.SF7 + lora.SF(r.Intn(6))
		a.TPdBm[i] = tpLevels[r.Intn(len(tpLevels))]
		a.Channel[i] = r.Intn(p.Plan.NumChannels())
	}
	ev, err := NewEvaluator(net, p, a, ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	fmt.Fprintf(&out, "ee %s\n", golden.Digest(golden.Floats(ev.EEAll())))

	probes := make([]float64, 0, 64)
	cur, _ := ev.MinEE()
	for i := 0; i < 64; i++ {
		dev := r.Intn(net.N())
		sf := lora.SF7 + lora.SF(r.Intn(6))
		tp := tpLevels[r.Intn(len(tpLevels))]
		ch := r.Intn(p.Plan.NumChannels())
		probes = append(probes, ev.MinEEIf(dev, sf, tp, ch))
		// Interleave thresholded probes as the greedy does; only the
		// accept/reject decision is order-stable, so digest that.
		got := ev.MinEEIfAbove(dev, sf, tp, ch, cur)
		if got > cur {
			probes = append(probes, got)
		} else {
			probes = append(probes, -1)
		}
	}
	fmt.Fprintf(&out, "minEEIf %s\n", golden.Digest(golden.Floats(probes)))

	for i := 0; i < 60; i++ {
		dev := r.Intn(net.N())
		sf := lora.SF7 + lora.SF(r.Intn(6))
		tp := tpLevels[r.Intn(len(tpLevels))]
		ch := r.Intn(p.Plan.NumChannels())
		if err := ev.SetDevice(dev, sf, tp, ch); err != nil {
			t.Fatal(err)
		}
	}
	ev.RecomputeAll()
	minEE, minIdx := ev.MinEE()
	fmt.Fprintf(&out, "afterSet %s\n",
		golden.Digest(golden.Floats(ev.EEAll()), golden.Float(minEE), fmt.Sprint(minIdx)))
	golden.Check(t, "testdata/golden_evaluator.txt", out.String(), *update)
}
