package model

import (
	"math"
	"testing"

	"eflora/internal/geo"
	"eflora/internal/lora"
	"eflora/internal/rng"
)

// TestEvaluatorFuzzConsistency drives the incremental evaluator through
// long random SetDevice sequences across several random topologies and
// parameter variants, checking after each burst that every cached metric
// matches a freshly constructed evaluator bit-for-bit (after the
// RecomputeAll flush). This is the strongest guard on the incremental
// group/exposure/capacity bookkeeping the allocator relies on.
func TestEvaluatorFuzzConsistency(t *testing.T) {
	r := rng.New(20260706)
	variants := []func(*Params){
		func(p *Params) {},
		func(p *Params) { p.TrafficDutyCycle = 0.05 },
		func(p *Params) { p.InterSFRejectionDB = 16 },
		func(p *Params) { p.Objective = ObjectiveThroughput },
		func(p *Params) { p.GatewayCapacity = 2 },
	}
	for vi, variant := range variants {
		p := DefaultParams()
		variant(&p)
		net := &Network{
			Devices:  geo.UniformDisc(40+r.Intn(40), 3500, r),
			Gateways: geo.GridGateways(1+r.Intn(3), 3500),
		}
		a := NewAllocation(net.N(), p.Plan)
		tpLevels := p.Plan.TxPowerLevels()
		for i := range a.SF {
			a.SF[i] = lora.SF7 + lora.SF(r.Intn(6))
			a.TPdBm[i] = tpLevels[r.Intn(len(tpLevels))]
			a.Channel[i] = r.Intn(p.Plan.NumChannels())
		}
		ev, err := NewEvaluator(net, p, a, ModeExact)
		if err != nil {
			t.Fatalf("variant %d: %v", vi, err)
		}
		for burst := 0; burst < 4; burst++ {
			for op := 0; op < 60; op++ {
				i := r.Intn(net.N())
				sf := lora.SF7 + lora.SF(r.Intn(6))
				tp := tpLevels[r.Intn(len(tpLevels))]
				ch := r.Intn(p.Plan.NumChannels())
				// Interleave trials (must not mutate) with commits.
				if op%3 == 0 {
					before, _ := ev.MinEE()
					_ = ev.MinEEIf(i, sf, tp, ch)
					after, _ := ev.MinEE()
					if before != after {
						t.Fatalf("variant %d: MinEEIf mutated state (%v -> %v)", vi, before, after)
					}
					continue
				}
				if err := ev.SetDevice(i, sf, tp, ch); err != nil {
					t.Fatalf("variant %d: SetDevice: %v", vi, err)
				}
			}
			ev.RecomputeAll()
			fresh, err := NewEvaluator(net, p, ev.Allocation(), ModeExact)
			if err != nil {
				t.Fatalf("variant %d: fresh: %v", vi, err)
			}
			got, want := ev.EEAll(), fresh.EEAll()
			for i := range got {
				if math.Abs(got[i]-want[i]) > 1e-9*math.Max(1e-12, math.Abs(want[i])) {
					t.Fatalf("variant %d burst %d: EE[%d] incremental %v vs fresh %v",
						vi, burst, i, got[i], want[i])
				}
			}
			gm, gi := ev.MinEE()
			fm, fi := fresh.MinEE()
			if math.Abs(gm-fm) > 1e-9*math.Max(1e-12, math.Abs(fm)) || gi != fi {
				t.Fatalf("variant %d: MinEE (%v, %d) vs fresh (%v, %d)", vi, gm, gi, fm, fi)
			}
		}
	}
}

// TestEvaluatorFuzzEEInvariants checks physical invariants hold across
// random configurations: EE and PRR are finite, non-negative and PRR <= 1.
func TestEvaluatorFuzzEEInvariants(t *testing.T) {
	r := rng.New(424242)
	for trial := 0; trial < 10; trial++ {
		p := DefaultParams()
		if trial%2 == 1 {
			p.TrafficDutyCycle = 0.01 * float64(1+r.Intn(10))
		}
		net := &Network{
			Devices:  geo.UniformDisc(30+r.Intn(60), 1000+4000*r.Float64(), r),
			Gateways: geo.GridGateways(1+r.Intn(5), 4000),
		}
		a := NewAllocation(net.N(), p.Plan)
		tpLevels := p.Plan.TxPowerLevels()
		for i := range a.SF {
			a.SF[i] = lora.SF7 + lora.SF(r.Intn(6))
			a.TPdBm[i] = tpLevels[r.Intn(len(tpLevels))]
			a.Channel[i] = r.Intn(p.Plan.NumChannels())
		}
		for _, mode := range []Mode{ModeExact, ModePPP} {
			ev, err := NewEvaluator(net, p, a, mode)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < net.N(); i++ {
				ee := ev.EE(i)
				prr := ev.PRR(i)
				if math.IsNaN(ee) || math.IsInf(ee, 0) || ee < 0 {
					t.Fatalf("trial %d mode %d: EE[%d] = %v", trial, mode, i, ee)
				}
				if prr < -1e-9 || prr > 1+1e-9 {
					t.Fatalf("trial %d mode %d: PRR[%d] = %v", trial, mode, i, prr)
				}
			}
		}
	}
}
