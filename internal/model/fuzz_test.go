package model

import (
	"math"
	"testing"

	"eflora/internal/geo"
	"eflora/internal/lora"
	"eflora/internal/rng"
)

// fuzzEvalScenario derives a bounded random deployment, parameter variant
// and allocation from (seed, knobs) for the evaluator fuzz targets.
func fuzzEvalScenario(seed, knobs uint64) (*Network, Params, Allocation) {
	r := rng.New(seed)
	p := DefaultParams()
	switch knobs % 5 {
	case 1:
		p.TrafficDutyCycle = 0.05
	case 2:
		p.InterSFRejectionDB = 16
	case 3:
		p.Objective = ObjectiveThroughput
	case 4:
		p.GatewayCapacity = 2
	}
	net := &Network{
		Devices:  geo.UniformDisc(40+r.Intn(40), 3500, r),
		Gateways: geo.GridGateways(1+r.Intn(3), 3500),
	}
	a := NewAllocation(net.N(), p.Plan)
	tpLevels := p.Plan.TxPowerLevels()
	for i := range a.SF {
		a.SF[i] = lora.SF7 + lora.SF(r.Intn(6))
		a.TPdBm[i] = tpLevels[r.Intn(len(tpLevels))]
		a.Channel[i] = r.Intn(p.Plan.NumChannels())
	}
	return net, p, a
}

// FuzzEvaluatorConsistency drives the incremental evaluator through a
// random SetDevice burst, then checks every cached metric against a
// freshly constructed evaluator (after the RecomputeAll flush). This is
// the strongest guard on the incremental group/exposure/capacity
// bookkeeping the allocator relies on.
func FuzzEvaluatorConsistency(f *testing.F) {
	for v := uint64(0); v < 5; v++ {
		f.Add(uint64(20260706)+v, v)
	}
	f.Fuzz(func(t *testing.T, seed, knobs uint64) {
		net, p, a := fuzzEvalScenario(seed, knobs)
		r := rng.New(seed ^ 0xa0761d6478bd642f)
		tpLevels := p.Plan.TxPowerLevels()
		ev, err := NewEvaluator(net, p, a, ModeExact)
		if err != nil {
			t.Fatal(err)
		}
		for op := 0; op < 60; op++ {
			i := r.Intn(net.N())
			sf := lora.SF7 + lora.SF(r.Intn(6))
			tp := tpLevels[r.Intn(len(tpLevels))]
			ch := r.Intn(p.Plan.NumChannels())
			// Interleave trials (must not mutate) with commits.
			if op%3 == 0 {
				before, _ := ev.MinEE()
				_ = ev.MinEEIf(i, sf, tp, ch)
				after, _ := ev.MinEE()
				if before != after {
					t.Fatalf("MinEEIf mutated state (%v -> %v)", before, after)
				}
				continue
			}
			if err := ev.SetDevice(i, sf, tp, ch); err != nil {
				t.Fatalf("SetDevice: %v", err)
			}
		}
		ev.RecomputeAll()
		fresh, err := NewEvaluator(net, p, ev.Allocation(), ModeExact)
		if err != nil {
			t.Fatalf("fresh: %v", err)
		}
		got, want := ev.EEAll(), fresh.EEAll()
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9*math.Max(1e-12, math.Abs(want[i])) {
				t.Fatalf("EE[%d] incremental %v vs fresh %v", i, got[i], want[i])
			}
		}
		gm, gi := ev.MinEE()
		fm, fi := fresh.MinEE()
		if math.Abs(gm-fm) > 1e-9*math.Max(1e-12, math.Abs(fm)) || gi != fi {
			t.Fatalf("MinEE (%v, %d) vs fresh (%v, %d)", gm, gi, fm, fi)
		}
	})
}

// FuzzEvaluatorInvariants checks physical invariants across fuzz-chosen
// configurations and both interference modes: EE and PRR are finite,
// non-negative and PRR <= 1.
func FuzzEvaluatorInvariants(f *testing.F) {
	for trial := uint64(0); trial < 10; trial++ {
		f.Add(uint64(424242)+trial, trial)
	}
	f.Fuzz(func(t *testing.T, seed, knobs uint64) {
		net, p, a := fuzzEvalScenario(seed, knobs)
		for _, mode := range []Mode{ModeExact, ModePPP} {
			ev, err := NewEvaluator(net, p, a, mode)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < net.N(); i++ {
				ee := ev.EE(i)
				prr := ev.PRR(i)
				if math.IsNaN(ee) || math.IsInf(ee, 0) || ee < 0 {
					t.Fatalf("mode %d: EE[%d] = %v", mode, i, ee)
				}
				if prr < -1e-9 || prr > 1+1e-9 {
					t.Fatalf("mode %d: PRR[%d] = %v", mode, i, prr)
				}
			}
		}
	})
}
