package model

import (
	"math"
	"testing"

	"eflora/internal/geo"
	"eflora/internal/lora"
)

func TestObjectiveValidation(t *testing.T) {
	p := DefaultParams()
	p.Objective = Objective(7)
	if err := p.Validate(); err == nil {
		t.Error("invalid objective accepted")
	}
	p.Objective = ObjectiveThroughput
	if err := p.Validate(); err != nil {
		t.Errorf("throughput objective rejected: %v", err)
	}
}

func TestThroughputMetricValues(t *testing.T) {
	net := testNetwork(50, 2, 71)
	p := DefaultParams()
	p.Objective = ObjectiveThroughput
	a := feasibleAllocation(net, DefaultParams())
	e, err := NewEvaluator(net, p, a, ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	// Throughput = L·PRR/T_g: with the fixed 181 s interval and a
	// 64-bit payload, per-device throughput is under 0.36 bit/s.
	for i := 0; i < 50; i++ {
		tput := e.EE(i) // the metric slot carries throughput now
		if tput < 0 || tput > p.AppPayloadBits()/p.PacketIntervalS+1e-9 {
			t.Fatalf("device %d throughput %v outside [0, %v]",
				i, tput, p.AppPayloadBits()/p.PacketIntervalS)
		}
		prr := e.PRR(i)
		if prr < -1e-9 || prr > 1+1e-9 {
			t.Fatalf("device %d PRR %v", i, prr)
		}
		// Inverting the metric must reproduce PRR.
		want := tput * p.PacketIntervalS / p.AppPayloadBits()
		if math.Abs(prr-want) > 1e-12 {
			t.Fatalf("PRR inversion mismatch: %v vs %v", prr, want)
		}
	}
}

func TestThroughputObjectiveFixedIntervalPrefersReliability(t *testing.T) {
	// With a fixed interval, throughput is proportional to PRR, so air
	// time is free: a lone far device's best throughput SF is a robust
	// one, while its best EE SF trades reliability against energy.
	net := &Network{
		Devices:  []geo.Point{{X: 3000, Y: 0}},
		Gateways: []geo.Point{{}},
	}
	_ = net
	pEE := DefaultParams()
	pTP := DefaultParams()
	pTP.Objective = ObjectiveThroughput
	bestSF := func(p Params) lora.SF {
		best, bestVal := lora.SF7, -1.0
		for _, sf := range lora.SFs() {
			a := NewAllocation(1, p.Plan)
			a.SF[0] = sf
			a.TPdBm[0] = 14
			e, err := NewEvaluator(net, p, a, ModeExact)
			if err != nil {
				panic(err)
			}
			if v := e.EE(0); v > bestVal {
				best, bestVal = sf, v
			}
		}
		return best
	}
	sfEE := bestSF(pEE)
	sfTP := bestSF(pTP)
	if sfTP < sfEE {
		t.Errorf("throughput objective picked a less robust SF (%v) than EE (%v)", sfTP, sfEE)
	}
	if sfTP != lora.SF12 {
		t.Errorf("with free air time the most robust SF should win, got %v", sfTP)
	}
}

func TestThroughputObjectiveInGreedyEvaluator(t *testing.T) {
	// The incremental machinery must stay consistent under the
	// throughput objective too.
	net := testNetwork(60, 2, 73)
	p := DefaultParams()
	p.Objective = ObjectiveThroughput
	a := feasibleAllocation(net, DefaultParams())
	e, err := NewEvaluator(net, p, a, ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SetDevice(5, lora.SF10, 8, 3); err != nil {
		t.Fatal(err)
	}
	e.RecomputeAll()
	fresh, err := NewEvaluator(net, p, e.Allocation(), ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	got, want := e.EEAll(), fresh.EEAll()
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9*math.Max(1e-12, want[i]) {
			t.Fatalf("metric[%d]: incremental %v vs fresh %v", i, got[i], want[i])
		}
	}
}
