package model

import (
	"testing"

	"eflora/internal/geo"
	"eflora/internal/lora"
)

func feasibilityFixture() (*Network, Params, [][]float64) {
	net := &Network{
		Devices: []geo.Point{
			{X: 100, Y: 0},   // very close: SF7 even at low power
			{X: 2500, Y: 0},  // mid-range
			{X: 9000, Y: 0},  // far: needs a large SF
			{X: 50000, Y: 0}, // unreachable
		},
		Gateways: []geo.Point{{}},
	}
	p := DefaultParams()
	return net, p, Gains(net, p)
}

func TestMinFeasibleSFOrdering(t *testing.T) {
	_, p, gains := feasibilityFixture()
	sfs := make([]lora.SF, 3)
	for i := 0; i < 3; i++ {
		sf, ok := MinFeasibleSF(gains, i, p.Plan.MaxTxPowerDBm)
		if !ok {
			t.Fatalf("device %d should be reachable", i)
		}
		sfs[i] = sf
	}
	if sfs[0] != lora.SF7 {
		t.Errorf("near device min SF = %v, want SF7", sfs[0])
	}
	if !(sfs[0] <= sfs[1] && sfs[1] <= sfs[2]) {
		t.Errorf("min feasible SF should grow with distance: %v", sfs)
	}
	if _, ok := MinFeasibleSF(gains, 3, p.Plan.MaxTxPowerDBm); ok {
		t.Error("50 km device should be unreachable")
	}
}

func TestMinFeasibleSFMonotoneInPower(t *testing.T) {
	_, p, gains := feasibilityFixture()
	for i := 0; i < 3; i++ {
		lo, okLo := MinFeasibleSF(gains, i, p.Plan.MinTxPowerDBm)
		hi, okHi := MinFeasibleSF(gains, i, p.Plan.MaxTxPowerDBm)
		if okLo && okHi && hi > lo {
			t.Errorf("device %d: min SF at max power (%v) exceeds min SF at min power (%v)", i, hi, lo)
		}
	}
}

func TestMinFeasibleTP(t *testing.T) {
	_, p, gains := feasibilityFixture()
	// Near device: minimum plan power suffices even at SF7.
	tp, ok := MinFeasibleTP(gains, 0, lora.SF7, p.Plan)
	if !ok || tp != p.Plan.MinTxPowerDBm {
		t.Errorf("near device min TP = (%v, %v), want (%v, true)", tp, ok, p.Plan.MinTxPowerDBm)
	}
	// Far device at SF7 may need more power than the plan allows; at SF12
	// it must be feasible.
	if _, ok := MinFeasibleTP(gains, 2, lora.SF12, p.Plan); !ok {
		t.Error("far device should close the link at SF12")
	}
	if _, ok := MinFeasibleTP(gains, 3, lora.SF12, p.Plan); ok {
		t.Error("50 km device should not close any link")
	}
}

func TestMinFeasibleTPIsSufficientAndMinimal(t *testing.T) {
	_, p, gains := feasibilityFixture()
	for i := 0; i < 3; i++ {
		for _, sf := range lora.SFs() {
			tp, ok := MinFeasibleTP(gains, i, sf, p.Plan)
			if !ok {
				continue
			}
			if !Feasible(gains, i, sf, tp) {
				t.Errorf("device %d %v: returned TP %v is not feasible", i, sf, tp)
			}
			lower := tp - p.Plan.TxPowerStepDBm
			if lower >= p.Plan.MinTxPowerDBm && Feasible(gains, i, sf, lower) {
				t.Errorf("device %d %v: TP %v is not minimal (%v also works)", i, sf, tp, lower)
			}
		}
	}
}

func TestReachableGateways(t *testing.T) {
	net := &Network{
		Devices:  []geo.Point{{X: 0, Y: 0}},
		Gateways: []geo.Point{{X: 500, Y: 0}, {X: 3000, Y: 0}, {X: 40000, Y: 0}},
	}
	p := DefaultParams()
	gains := Gains(net, p)
	got := ReachableGateways(gains, 0, lora.SF7, 14)
	if len(got) < 1 || got[0] != 0 {
		t.Fatalf("nearest gateway should be reachable at SF7: %v", got)
	}
	all := ReachableGateways(gains, 0, lora.SF12, 14)
	if len(all) < len(got) {
		t.Errorf("SF12 should reach at least as many gateways: %v vs %v", all, got)
	}
	for _, k := range all {
		if k == 2 {
			t.Error("40 km gateway should not be reachable")
		}
	}
}

func TestFeasibleConsistentWithReachable(t *testing.T) {
	net, p, gains := feasibilityFixture()
	_ = net
	for i := 0; i < 4; i++ {
		for _, sf := range lora.SFs() {
			for _, tp := range p.Plan.TxPowerLevels() {
				want := len(ReachableGateways(gains, i, sf, tp)) > 0
				if got := Feasible(gains, i, sf, tp); got != want {
					t.Fatalf("Feasible(%d, %v, %v) = %v, ReachableGateways says %v",
						i, sf, tp, got, want)
				}
			}
		}
	}
}
