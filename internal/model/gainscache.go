package model

import (
	"sync"

	"eflora/internal/geo"
)

// gainsCacheSize bounds how many (network, params) gain matrices are
// retained. Experiments run a handful of live networks at a time (one per
// in-flight trial); a small ring keeps hits near-certain without pinning
// every discarded per-trial network's matrix forever.
const gainsCacheSize = 8

// gainsEntry snapshots everything Gains depends on, so a hit can be
// validated by content even when a caller (e.g. alloc.Incremental) grows
// or edits the same *Network between calls.
type gainsEntry struct {
	net      *Network
	devices  []geo.Point
	gateways []geo.Point
	env      []int // nil when the network had no Env slice
	envs     []PathLoss
	gains    [][]float64
}

func (e *gainsEntry) matches(net *Network, p Params) bool {
	if e.net != net ||
		len(e.devices) != len(net.Devices) ||
		len(e.gateways) != len(net.Gateways) ||
		len(e.envs) != len(p.Environments) {
		return false
	}
	if (e.env == nil) != (net.Env == nil) || len(e.env) != len(net.Env) {
		return false
	}
	for i, d := range net.Devices {
		if e.devices[i] != d {
			return false
		}
	}
	for k, g := range net.Gateways {
		if e.gateways[k] != g {
			return false
		}
	}
	for i, v := range net.Env {
		if e.env[i] != v {
			return false
		}
	}
	for i, pl := range p.Environments {
		if e.envs[i] != pl {
			return false
		}
	}
	return true
}

var gainsCache struct {
	sync.Mutex
	entries [gainsCacheSize]*gainsEntry
	next    int
}

// Gains returns the [device][gateway] linear path attenuation matrix.
// Matrices are cached per (network, params): repeated calls for the same
// deployment — every trial's evaluator, allocator and simulator asks for
// the same matrix — return one shared computation. The cache validates by
// content (device and gateway positions, environment assignment and
// path-loss parameters), so in-place network edits are detected; the
// validation scan is O(n+g) comparisons against an O(n·g) pow-heavy
// recompute. The returned matrix is shared and must be treated as
// read-only.
func Gains(net *Network, p Params) [][]float64 {
	gainsCache.Lock()
	for _, e := range gainsCache.entries {
		if e != nil && e.matches(net, p) {
			g := e.gains
			gainsCache.Unlock()
			return g
		}
	}
	gainsCache.Unlock()

	// Compute outside the lock so concurrent trials on distinct networks
	// do not serialize; a racing duplicate insert is harmless.
	n, g := net.N(), net.G()
	rows := make([]float64, n*g)
	gains := make([][]float64, n)
	for i, d := range net.Devices {
		env := p.Environments[net.EnvOf(i)]
		row := rows[i*g : (i+1)*g : (i+1)*g]
		for k, gw := range net.Gateways {
			row[k] = env.Gain(d.Dist(gw))
		}
		gains[i] = row
	}

	e := &gainsEntry{
		net:      net,
		devices:  append([]geo.Point(nil), net.Devices...),
		gateways: append([]geo.Point(nil), net.Gateways...),
		envs:     append([]PathLoss(nil), p.Environments...),
		gains:    gains,
	}
	if net.Env != nil {
		e.env = append([]int(nil), net.Env...)
	}
	gainsCache.Lock()
	gainsCache.entries[gainsCache.next] = e
	gainsCache.next = (gainsCache.next + 1) % gainsCacheSize
	gainsCache.Unlock()
	return gains
}
