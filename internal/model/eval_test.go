package model

import (
	"math"
	"testing"

	"eflora/internal/geo"
	"eflora/internal/lora"
	"eflora/internal/rng"
)

// testNetwork builds a small deterministic deployment.
func testNetwork(nDev, nGW int, seed uint64) *Network {
	r := rng.New(seed)
	return &Network{
		Devices:  geo.UniformDisc(nDev, 3000, r),
		Gateways: geo.GridGateways(nGW, 3000),
	}
}

// feasibleAllocation assigns each device its minimum feasible SF at max
// power, channels round-robin.
func feasibleAllocation(net *Network, p Params) Allocation {
	gains := Gains(net, p)
	a := NewAllocation(net.N(), p.Plan)
	for i := 0; i < net.N(); i++ {
		sf, ok := MinFeasibleSF(gains, i, p.Plan.MaxTxPowerDBm)
		if !ok {
			sf = lora.MaxSF
		}
		a.SF[i] = sf
		a.TPdBm[i] = p.Plan.MaxTxPowerDBm
		a.Channel[i] = i % p.Plan.NumChannels()
	}
	return a
}

func newTestEvaluator(t *testing.T, nDev, nGW int, seed uint64, mode Mode) *Evaluator {
	t.Helper()
	net := testNetwork(nDev, nGW, seed)
	p := DefaultParams()
	e, err := NewEvaluator(net, p, feasibleAllocation(net, p), mode)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEvaluatorConstructorValidates(t *testing.T) {
	net := testNetwork(10, 1, 1)
	p := DefaultParams()
	alloc := feasibleAllocation(net, p)

	if _, err := NewEvaluator(net, p, alloc, Mode(99)); err == nil {
		t.Error("invalid mode accepted")
	}
	bad := p
	bad.GatewayCapacity = 0
	if _, err := NewEvaluator(net, bad, alloc, ModeExact); err == nil {
		t.Error("invalid params accepted")
	}
	empty := &Network{}
	if _, err := NewEvaluator(empty, p, alloc, ModeExact); err == nil {
		t.Error("empty network accepted")
	}
	short := NewAllocation(5, p.Plan)
	if _, err := NewEvaluator(net, p, short, ModeExact); err == nil {
		t.Error("mis-sized allocation accepted")
	}
}

func TestEEValuesSane(t *testing.T) {
	e := newTestEvaluator(t, 200, 3, 42, ModeExact)
	for i, ee := range e.EEAll() {
		if ee < 0 || math.IsNaN(ee) || math.IsInf(ee, 0) {
			t.Fatalf("EE[%d] = %v", i, ee)
		}
		prr := e.PRR(i)
		if prr < -1e-9 || prr > 1+1e-9 {
			t.Fatalf("PRR[%d] = %v outside [0,1]", i, prr)
		}
	}
	// The paper reports EE between roughly 0.1 and 2.3 bits/mJ, i.e.
	// 100..2300 bits/J; check the order of magnitude.
	minEE, _ := e.MinEE()
	s := e.EEAll()
	maxEE := 0.0
	for _, v := range s {
		if v > maxEE {
			maxEE = v
		}
	}
	if maxEE < 50 || maxEE > 1e5 {
		t.Errorf("max EE = %v bits/J, want paper-scale (hundreds to thousands)", maxEE)
	}
	if minEE < 0 || minEE > maxEE {
		t.Errorf("min EE = %v out of range (max %v)", minEE, maxEE)
	}
}

func TestMinEEMatchesEEAll(t *testing.T) {
	e := newTestEvaluator(t, 150, 2, 7, ModeExact)
	min, idx := e.MinEE()
	all := e.EEAll()
	want := math.Inf(1)
	for _, v := range all {
		if v < want {
			want = v
		}
	}
	if math.Abs(min-want) > 1e-12 {
		t.Errorf("MinEE = %v, scan of EEAll = %v", min, want)
	}
	if idx < 0 || all[idx] != min {
		t.Errorf("MinEE index %d does not attain the minimum", idx)
	}
}

func TestSetDeviceMatchesFreshEvaluator(t *testing.T) {
	// Incremental updates must agree with building a fresh evaluator on
	// the mutated allocation.
	net := testNetwork(80, 3, 3)
	p := DefaultParams()
	alloc := feasibleAllocation(net, p)
	e, err := NewEvaluator(net, p, alloc, ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	mut := alloc.Clone()
	changes := []struct {
		i  int
		sf lora.SF
		tp float64
		ch int
	}{
		{0, lora.SF9, 8, 3},
		{10, lora.SF12, 2, 7},
		{0, lora.SF8, 14, 3},
		{41, lora.SF10, 6, 0},
	}
	for _, c := range changes {
		if err := e.SetDevice(c.i, c.sf, c.tp, c.ch); err != nil {
			t.Fatal(err)
		}
		mut.SF[c.i], mut.TPdBm[c.i], mut.Channel[c.i] = c.sf, c.tp, c.ch
	}
	e.RecomputeAll()
	fresh, err := NewEvaluator(net, p, mut, ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	gotAll, wantAll := e.EEAll(), fresh.EEAll()
	for i := range gotAll {
		if math.Abs(gotAll[i]-wantAll[i]) > 1e-9*math.Max(1, wantAll[i]) {
			t.Fatalf("EE[%d]: incremental %v vs fresh %v", i, gotAll[i], wantAll[i])
		}
	}
}

func TestSetDeviceRejectsInvalid(t *testing.T) {
	e := newTestEvaluator(t, 10, 1, 1, ModeExact)
	if err := e.SetDevice(-1, lora.SF7, 14, 0); err == nil {
		t.Error("negative index accepted")
	}
	if err := e.SetDevice(0, lora.SF(6), 14, 0); err == nil {
		t.Error("invalid SF accepted")
	}
	if err := e.SetDevice(0, lora.SF7, 99, 0); err == nil {
		t.Error("out-of-range TP accepted")
	}
	if err := e.SetDevice(0, lora.SF7, 14, 99); err == nil {
		t.Error("out-of-range channel accepted")
	}
}

func TestMinEEIfAgreesWithCommit(t *testing.T) {
	net := testNetwork(60, 2, 11)
	p := DefaultParams()
	e, err := NewEvaluator(net, p, feasibleAllocation(net, p), ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		i  int
		sf lora.SF
		tp float64
		ch int
	}{
		{5, lora.SF9, 10, 2},
		{5, lora.SF7, 2, 5},
		{17, lora.SF11, 14, 1},
		{17, lora.SF8, 6, 1}, // same channel, different SF
		{3, lora.SF7, 4, 3},  // may be same group as initial
	}
	for _, c := range cases {
		predicted := e.MinEEIf(c.i, c.sf, c.tp, c.ch)
		// Commit on a clone of the state via a fresh evaluator to compare.
		mut := e.Allocation()
		mut.SF[c.i], mut.TPdBm[c.i], mut.Channel[c.i] = c.sf, c.tp, c.ch
		fresh, err := NewEvaluator(net, p, mut, ModeExact)
		if err != nil {
			t.Fatal(err)
		}
		actual, _ := fresh.MinEE()
		// MinEEIf holds θ fixed, so allow a small relative tolerance.
		if math.Abs(predicted-actual) > 0.02*math.Max(actual, 1e-9) {
			t.Errorf("MinEEIf(%+v) = %v, committed min = %v", c, predicted, actual)
		}
	}
}

func TestMinEEIfDoesNotMutate(t *testing.T) {
	e := newTestEvaluator(t, 50, 2, 13, ModeExact)
	before, _ := e.MinEE()
	beforeAll := e.EEAll()
	_ = e.MinEEIf(7, lora.SF12, 2, 4)
	_ = e.MinEEIf(7, lora.SF7, 14, 0)
	after, _ := e.MinEE()
	if before != after {
		t.Errorf("MinEEIf mutated MinEE: %v -> %v", before, after)
	}
	for i, v := range e.EEAll() {
		if v != beforeAll[i] {
			t.Fatalf("MinEEIf mutated EE[%d]", i)
		}
	}
}

func TestMoreInterferersLowerEE(t *testing.T) {
	// Packing everyone into one (SF, channel) group must not raise the
	// minimum EE compared to spreading across channels.
	net := testNetwork(120, 2, 17)
	p := DefaultParams()

	spread := feasibleAllocation(net, p)
	packed := spread.Clone()
	for i := range packed.Channel {
		packed.Channel[i] = 0
		packed.SF[i] = lora.SF9
		packed.TPdBm[i] = 14
	}
	for i := range spread.SF {
		spread.SF[i] = lora.SF9
		spread.TPdBm[i] = 14
	}
	eSpread, err := NewEvaluator(net, p, spread, ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	ePacked, err := NewEvaluator(net, p, packed, ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	minSpread, _ := eSpread.MinEE()
	minPacked, _ := ePacked.MinEE()
	if minPacked >= minSpread {
		t.Errorf("packed min EE %v >= spread min EE %v", minPacked, minSpread)
	}
}

func TestLargerSFLowersEEWithoutInterference(t *testing.T) {
	// A lone device near a gateway: higher SF means longer air time and
	// hence strictly lower EE (PRR is ~1 either way).
	net := &Network{
		Devices:  []geo.Point{{X: 200, Y: 0}},
		Gateways: []geo.Point{{}},
	}
	p := DefaultParams()
	prev := math.Inf(1)
	for _, sf := range lora.SFs() {
		a := NewAllocation(1, p.Plan)
		a.SF[0] = sf
		a.TPdBm[0] = 14
		e, err := NewEvaluator(net, p, a, ModeExact)
		if err != nil {
			t.Fatal(err)
		}
		ee := e.EE(0)
		if ee >= prev {
			t.Errorf("EE at %v = %v, not below previous %v", sf, ee, prev)
		}
		prev = ee
	}
}

func TestMoreGatewaysImprovePRR(t *testing.T) {
	// The same devices with more gateways should see PRR (hence EE) rise
	// for the worst device: the multi-gateway reception of Eq. 13.
	p := DefaultParams()
	r := rng.New(23)
	devices := geo.UniformDisc(150, 4000, r)

	minWith := func(g int) float64 {
		net := &Network{Devices: devices, Gateways: geo.GridGateways(g, 4000)}
		a := feasibleAllocation(net, p)
		// Same radio settings in both runs so only gateway diversity
		// differs.
		for i := range a.SF {
			a.SF[i] = lora.SF10
			a.TPdBm[i] = 14
		}
		e, err := NewEvaluator(net, p, a, ModeExact)
		if err != nil {
			t.Fatal(err)
		}
		m, _ := e.MinEE()
		return m
	}
	if m1, m5 := minWith(1), minWith(5); m5 <= m1 {
		t.Errorf("min EE with 5 GWs (%v) should exceed 1 GW (%v)", m5, m1)
	}
}

func TestPPPModeRoughlyTracksExact(t *testing.T) {
	// The PPP/Laplace fast path is an approximation; require agreement on
	// ordering and coarse magnitude for the minimum EE.
	net := testNetwork(300, 3, 29)
	p := DefaultParams()
	a := feasibleAllocation(net, p)
	exact, err := NewEvaluator(net, p, a, ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	ppp, err := NewEvaluator(net, p, a, ModePPP)
	if err != nil {
		t.Fatal(err)
	}
	me, _ := exact.MinEE()
	mp, _ := ppp.MinEE()
	if me <= 0 || mp <= 0 {
		t.Fatalf("non-positive minima: exact %v, ppp %v", me, mp)
	}
	// The PPP/Laplace formulation integrates interferers arbitrarily
	// close to each gateway and is therefore systematically pessimistic
	// versus the hard-collision exact mode; require the right ordering
	// and a strong per-device correlation rather than a tight ratio.
	if mp > me*1.5 {
		t.Errorf("PPP min EE %v should not exceed exact %v", mp, me)
	}
	exEE, ppEE := exact.EEAll(), ppp.EEAll()
	var sx, sy float64
	for i := range exEE {
		sx += exEE[i]
		sy += ppEE[i]
	}
	mx, my := sx/float64(len(exEE)), sy/float64(len(ppEE))
	var cov, vx, vy float64
	for i := range exEE {
		cov += (exEE[i] - mx) * (ppEE[i] - my)
		vx += (exEE[i] - mx) * (exEE[i] - mx)
		vy += (ppEE[i] - my) * (ppEE[i] - my)
	}
	if vx > 0 && vy > 0 {
		corr := cov / math.Sqrt(vx*vy)
		if corr < 0.5 {
			t.Errorf("exact-vs-PPP EE correlation = %v, want > 0.5", corr)
		}
	}
}

func TestInterSFExtensionReducesEE(t *testing.T) {
	net := testNetwork(200, 2, 31)
	p := DefaultParams()
	a := feasibleAllocation(net, p)
	base, err := NewEvaluator(net, p, a, ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	p2 := p
	p2.InterSFRejectionDB = 16
	withInter, err := NewEvaluator(net, p2, a, ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := base.MinEE()
	mi, _ := withInter.MinEE()
	if mi > mb+1e-12 {
		t.Errorf("inter-SF interference raised min EE: %v > %v", mi, mb)
	}
}

func TestPerDeviceIntervalExtension(t *testing.T) {
	// Devices reporting twice as often have double the duty cycle, which
	// must increase contention and can only hurt the others.
	net := testNetwork(100, 2, 37)
	p := DefaultParams()
	a := feasibleAllocation(net, p)

	slow := &Network{Devices: net.Devices, Gateways: net.Gateways}
	fast := &Network{Devices: net.Devices, Gateways: net.Gateways}
	fast.IntervalS = make([]float64, net.N())
	for i := range fast.IntervalS {
		fast.IntervalS[i] = p.PacketIntervalS / 4
	}
	eSlow, err := NewEvaluator(slow, p, a, ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	eFast, err := NewEvaluator(fast, p, a, ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	ms, _ := eSlow.MinEE()
	mf, _ := eFast.MinEE()
	if mf >= ms {
		t.Errorf("4x traffic should lower min EE: fast %v >= slow %v", mf, ms)
	}
}

func TestAllocationSnapshotRoundTrip(t *testing.T) {
	e := newTestEvaluator(t, 30, 2, 41, ModeExact)
	if err := e.SetDevice(4, lora.SF11, 8, 2); err != nil {
		t.Fatal(err)
	}
	a := e.Allocation()
	if a.SF[4] != lora.SF11 || a.TPdBm[4] != 8 || a.Channel[4] != 2 {
		t.Errorf("snapshot did not capture SetDevice: %v %v %v", a.SF[4], a.TPdBm[4], a.Channel[4])
	}
	// Snapshot is a copy: mutating it must not affect the evaluator.
	a.SF[4] = lora.SF7
	if e.Allocation().SF[4] != lora.SF11 {
		t.Error("Allocation returned a view, not a copy")
	}
}

func TestGatewayCapacityBites(t *testing.T) {
	// With a capacity-1 gateway and many high-duty devices, θ should
	// visibly depress PRR versus a high-capacity gateway.
	net := testNetwork(100, 1, 43)
	p := DefaultParams()
	p.PacketIntervalS = 30 // very chatty
	a := feasibleAllocation(net, p)
	for i := range a.SF {
		a.SF[i] = lora.SF10
	}
	pLow := p
	pLow.GatewayCapacity = 1
	pHigh := p
	pHigh.GatewayCapacity = 64
	eLow, err := NewEvaluator(net, pLow, a, ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	eHigh, err := NewEvaluator(net, pHigh, a, ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	ml, _ := eLow.MinEE()
	mh, _ := eHigh.MinEE()
	if ml >= mh {
		t.Errorf("capacity-1 min EE %v should be below capacity-64 %v", ml, mh)
	}
}
