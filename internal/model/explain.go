package model

import (
	"fmt"
	"math"
	"strings"

	"eflora/internal/lora"
)

// GatewayBreakdown decomposes one device→gateway link of the model.
type GatewayBreakdown struct {
	// Gateway index and link distance in meters.
	Gateway   int
	DistanceM float64
	// RxPowerDBm is the mean received power (no fading).
	RxPowerDBm float64
	// FadeMarginDB is the mean rx power minus the binding floor
	// (max of SNR-threshold noise floor and sensitivity).
	FadeMarginDB float64
	// PFade is P{the Rayleigh draw clears the floor}.
	PFade float64
	// Theta is the gateway-capacity factor (paper Eq. 12).
	Theta float64
	// CollisionExposure is the expected count of visible co-group
	// overlaps at this gateway.
	CollisionExposure float64
}

// Breakdown explains a device's modelled energy efficiency.
type Breakdown struct {
	Device  int
	SF      lora.SF
	TPdBm   float64
	Channel int
	// GroupSize is the number of co-(SF,channel) devices incl. this one.
	GroupSize int
	// DutyCycle is T_i/T_g.
	DutyCycle float64
	// AirTimeS is the packet time-on-air.
	AirTimeS float64
	// EnergyPerTxJ is E_s.
	EnergyPerTxJ float64
	// CollisionSurvival is the shared overlap-survival factor.
	CollisionSurvival float64
	// PRR and EE are the modelled packet reception ratio and energy
	// efficiency (bits/J).
	PRR, EE  float64
	Gateways []GatewayBreakdown
}

// Explain decomposes device i's cached energy efficiency into its
// physical factors, for debugging allocations and reporting. It is valid
// for ModeExact evaluators; PPP mode folds interference into a Laplace
// factor that has no per-gateway decomposition.
func (e *Evaluator) Explain(i int) Breakdown {
	gr := e.groupOf(e.sf[i], e.ch[i])
	sf := e.sf[i]
	th := e.thLin[sf]
	ss := e.ssMW[sf]
	floorMW := math.Max(th*e.noiseMW, ss)
	b := Breakdown{
		Device:       i,
		SF:           sf,
		TPdBm:        e.tpDBm[i],
		Channel:      e.ch[i],
		GroupSize:    gr.count,
		DutyCycle:    e.alpha[i],
		AirTimeS:     e.toaBySF[sf],
		EnergyPerTxJ: e.es[i],
		PRR:          e.PRR(i),
		EE:           e.ee[i],
	}
	var wSum, wExp float64
	for k := 0; k < e.g; k++ {
		pa := e.tpMW[i] * e.gain[i][k]
		gb := GatewayBreakdown{
			Gateway:   k,
			DistanceM: e.net.Devices[i].Dist(e.net.Gateways[k]),
		}
		if pa > 0 {
			gb.RxPowerDBm = lora.MilliwattsToDBm(pa)
			gb.FadeMarginDB = gb.RxPowerDBm - lora.MilliwattsToDBm(floorMW)
			gb.PFade = math.Exp(-floorMW / pa)
			gb.Theta = e.capDP[k].ProbAtMostExcluding(e.q[i][k], e.p.GatewayCapacity-1)
			visEx := gr.visSum[k] - e.vis[i][k]
			qEx := gr.qSum[k] - e.q[i][k]
			gb.CollisionExposure = e.alpha[i]*visEx + qEx
			visOwn := math.Exp(-ss / pa)
			wSum += visOwn
			wExp += visOwn * gb.CollisionExposure
		} else {
			gb.RxPowerDBm = math.Inf(-1)
			gb.FadeMarginDB = math.Inf(-1)
		}
		b.Gateways = append(b.Gateways, gb)
	}
	b.CollisionSurvival = 1.0
	if wSum > 0 {
		b.CollisionSurvival = math.Exp(-wExp / wSum)
	}
	return b
}

// String renders the breakdown for humans.
func (b Breakdown) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "device %d: %v @ %g dBm ch%d | group %d devices, duty %.4f\n",
		b.Device, b.SF, b.TPdBm, b.Channel, b.GroupSize, b.DutyCycle)
	fmt.Fprintf(&sb, "  air time %.1f ms, %.2f mJ/attempt, collision survival %.3f\n",
		b.AirTimeS*1e3, b.EnergyPerTxJ*1e3, b.CollisionSurvival)
	fmt.Fprintf(&sb, "  PRR %.3f -> EE %.1f bits/J\n", b.PRR, b.EE)
	for _, g := range b.Gateways {
		fmt.Fprintf(&sb, "  gw %d @ %.0f m: rx %.1f dBm (margin %+.1f dB) pFade %.3f theta %.3f exposure %.3f\n",
			g.Gateway, g.DistanceM, g.RxPowerDBm, g.FadeMarginDB, g.PFade, g.Theta, g.CollisionExposure)
	}
	return sb.String()
}
