package model

import (
	"math"
	"strings"
	"testing"

	"eflora/internal/geo"
	"eflora/internal/lora"
)

func TestExplainConsistentWithEE(t *testing.T) {
	e := newTestEvaluator(t, 120, 3, 51, ModeExact)
	for i := 0; i < 120; i += 7 {
		b := e.Explain(i)
		if b.Device != i {
			t.Fatalf("device mismatch %d", b.Device)
		}
		if math.Abs(b.EE-e.EE(i)) > 1e-12 {
			t.Errorf("Explain EE %v != cached %v", b.EE, e.EE(i))
		}
		if math.Abs(b.PRR-e.PRR(i)) > 1e-12 {
			t.Errorf("Explain PRR %v != cached %v", b.PRR, e.PRR(i))
		}
		if len(b.Gateways) != 3 {
			t.Fatalf("gateway breakdowns = %d", len(b.Gateways))
		}
		if b.GroupSize < 1 {
			t.Errorf("group size %d", b.GroupSize)
		}
		if b.CollisionSurvival <= 0 || b.CollisionSurvival > 1 {
			t.Errorf("collision survival %v", b.CollisionSurvival)
		}
		for _, g := range b.Gateways {
			if g.PFade < 0 || g.PFade > 1 || g.Theta < 0 || g.Theta > 1 {
				t.Errorf("gateway %d probabilities out of range: %+v", g.Gateway, g)
			}
		}
	}
}

func TestExplainReconstructsPRR(t *testing.T) {
	// PRR must equal collisionSurvival * (1 - prod(1 - theta*pFade)).
	e := newTestEvaluator(t, 60, 2, 53, ModeExact)
	for i := 0; i < 60; i++ {
		b := e.Explain(i)
		prodFail := 1.0
		for _, g := range b.Gateways {
			if math.IsInf(g.RxPowerDBm, -1) {
				continue
			}
			prodFail *= 1 - g.Theta*g.PFade
		}
		want := b.CollisionSurvival * (1 - prodFail)
		if math.Abs(want-b.PRR) > 1e-9 {
			t.Fatalf("device %d: reconstructed PRR %v != %v", i, want, b.PRR)
		}
	}
}

func TestExplainMarginMatchesDistance(t *testing.T) {
	net := &Network{
		Devices:  []geo.Point{{X: 200, Y: 0}, {X: 4000, Y: 0}},
		Gateways: []geo.Point{{}},
	}
	p := DefaultParams()
	a := NewAllocation(2, p.Plan)
	a.SF[0], a.SF[1] = lora.SF7, lora.SF10
	a.TPdBm[0], a.TPdBm[1] = 14, 14
	e, err := NewEvaluator(net, p, a, ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	near := e.Explain(0)
	far := e.Explain(1)
	if near.Gateways[0].FadeMarginDB <= far.Gateways[0].FadeMarginDB {
		t.Errorf("near margin %v should exceed far margin %v",
			near.Gateways[0].FadeMarginDB, far.Gateways[0].FadeMarginDB)
	}
	if near.AirTimeS >= far.AirTimeS {
		t.Error("SF7 air time should be below SF10")
	}
}

func TestExplainString(t *testing.T) {
	e := newTestEvaluator(t, 20, 2, 57, ModeExact)
	s := e.Explain(3).String()
	for _, want := range []string{"device 3", "PRR", "gw 0", "gw 1", "margin"} {
		if !strings.Contains(s, want) {
			t.Errorf("breakdown text missing %q:\n%s", want, s)
		}
	}
}
