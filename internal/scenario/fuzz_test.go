package scenario

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzScenarioDelta feeds arbitrary bytes to the JSON-lines delta reader.
// Malformed input may be rejected but must not panic; streams that parse
// must round-trip losslessly through AppendDelta and a second read.
func FuzzScenarioDelta(f *testing.F) {
	f.Add([]byte(`{"version":1,"atS":12.5,"comment":"drift","changes":[{"device":3,"sf":9,"tpDBm":8,"channel":2}]}` + "\n"))
	f.Add([]byte(`{"version":1,"changes":[]}` + "\n\n" + `{"version":1,"changes":[{"device":0,"sf":7,"tpDBm":2,"channel":0}]}` + "\n"))
	f.Add([]byte("\n\n"))
	f.Add([]byte(`{"version":`))
	f.Add([]byte(`[1,2,3]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		ds, err := ReadDeltas(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		for i := range ds {
			if err := AppendDelta(&buf, &ds[i]); err != nil {
				t.Fatalf("append parsed delta %d: %v", i, err)
			}
		}
		ds2, err := ReadDeltas(&buf)
		if err != nil {
			t.Fatalf("re-read appended deltas: %v", err)
		}
		if len(ds) == 0 {
			if len(ds2) != 0 {
				t.Fatalf("empty stream round-tripped to %d deltas", len(ds2))
			}
			return
		}
		if !reflect.DeepEqual(ds, ds2) {
			t.Fatalf("round trip changed deltas:\n was %+v\n now %+v", ds, ds2)
		}
	})
}
