package scenario

import (
	"bytes"
	"strings"
	"testing"

	"eflora/internal/geo"
	"eflora/internal/lora"
	"eflora/internal/model"
)

func deltaFixtureFile() *File {
	net := &model.Network{
		Devices:  []geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 0, Y: 100}},
		Gateways: []geo.Point{{X: 50, Y: 50}},
	}
	a := model.Allocation{
		SF:      []lora.SF{lora.SF7, lora.SF8, lora.SF9},
		TPdBm:   []float64{2, 5, 8},
		Channel: []int{0, 1, 2},
	}
	return FromNetwork(net, &a, "delta test")
}

func TestDeltaRoundTripAndApply(t *testing.T) {
	var buf bytes.Buffer
	deltas := []Delta{
		{Version: CurrentVersion, AtS: 10, Changes: []DeltaChange{
			{Device: 1, SF: 10, TPdBm: 11, Channel: 0},
		}},
		{Version: CurrentVersion, AtS: 40, Comment: "drift", Changes: []DeltaChange{
			{Device: 0, SF: 8, TPdBm: 14, Channel: 2},
			{Device: 2, SF: 7, TPdBm: 2, Channel: 1},
		}},
	}
	for i := range deltas {
		if err := AppendDelta(&buf, &deltas[i]); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadDeltas(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || len(got[1].Changes) != 2 || got[1].Comment != "drift" {
		t.Fatalf("round trip = %+v", got)
	}

	f := deltaFixtureFile()
	for i := range got {
		if err := f.ApplyDelta(&got[i]); err != nil {
			t.Fatal(err)
		}
	}
	if f.Allocation.SF[1] != 10 || f.Allocation.TPdBm[1] != 11 || f.Allocation.Channel[1] != 0 {
		t.Errorf("device 1 after apply = %d/%v/%d", f.Allocation.SF[1], f.Allocation.TPdBm[1], f.Allocation.Channel[1])
	}
	if f.Allocation.SF[0] != 8 || f.Allocation.SF[2] != 7 {
		t.Errorf("second delta not applied: %+v", f.Allocation)
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("file invalid after deltas: %v", err)
	}
}

func TestDeltaValidation(t *testing.T) {
	f := deltaFixtureFile()
	bad := []Delta{
		{Version: 99, Changes: []DeltaChange{{Device: 0, SF: 7}}},
		{Version: CurrentVersion, Changes: []DeltaChange{{Device: 3, SF: 7}}},
		{Version: CurrentVersion, Changes: []DeltaChange{{Device: -1, SF: 7}}},
		{Version: CurrentVersion, Changes: []DeltaChange{{Device: 0, SF: 42}}},
		{Version: CurrentVersion, Changes: []DeltaChange{{Device: 0, SF: 7, Channel: -2}}},
	}
	for i := range bad {
		if err := f.ApplyDelta(&bad[i]); err == nil {
			t.Errorf("bad delta %d accepted", i)
		}
	}
	noAlloc := deltaFixtureFile()
	noAlloc.Allocation = nil
	ok := Delta{Version: CurrentVersion, Changes: []DeltaChange{{Device: 0, SF: 7}}}
	if err := noAlloc.ApplyDelta(&ok); err == nil {
		t.Error("delta applied to allocation-less file")
	}
}

func TestReadDeltasSkipsBlankAndReportsBadLines(t *testing.T) {
	in := `{"version":1,"changes":[{"device":0,"sf":7,"tpDBm":2,"channel":0}]}

{"version":1,"changes":[]}
`
	got, err := ReadDeltas(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("deltas = %d, want 2", len(got))
	}
	if _, err := ReadDeltas(strings.NewReader("{not json\n")); err == nil {
		t.Error("malformed line accepted")
	}
}
