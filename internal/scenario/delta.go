package scenario

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"eflora/internal/lora"
)

// DeltaChange is one device's updated resource assignment.
type DeltaChange struct {
	Device  int     `json:"device"`
	SF      int     `json:"sf"`
	TPdBm   float64 `json:"tpDBm"`
	Channel int     `json:"channel"`
}

// Delta is an incremental allocation update — the unit the live network
// server emits when online re-allocation moves devices. Deltas are
// appended to a JSON-lines stream (one Delta per line) so downstream
// tooling can tail them; ApplyDelta folds one into a full scenario File.
type Delta struct {
	Version int `json:"version"`
	// AtS is the server-relative emission time in seconds.
	AtS float64 `json:"atS,omitempty"`
	// Comment is free-form provenance (trigger, daemon instance).
	Comment string        `json:"comment,omitempty"`
	Changes []DeltaChange `json:"changes"`
	// Resets lists devices whose rolling statistics the emitter cleared
	// without changing their assignment (drift detected, greedy kept the
	// settings). Together with Changes it makes the delta a complete
	// record of the control-loop step's state mutation, so a WAL replay
	// can reproduce the tracker effects exactly.
	Resets []int `json:"resets,omitempty"`
}

// Validate checks the delta against a deployment of n devices.
func (d *Delta) Validate(n int) error {
	if d.Version != CurrentVersion {
		return fmt.Errorf("scenario: unsupported delta version %d (want %d)", d.Version, CurrentVersion)
	}
	for _, c := range d.Changes {
		if c.Device < 0 || c.Device >= n {
			return fmt.Errorf("scenario: delta device %d out of range [0,%d)", c.Device, n)
		}
		if !lora.SF(c.SF).Valid() {
			return fmt.Errorf("scenario: delta device %d has invalid SF %d", c.Device, c.SF)
		}
		if c.Channel < 0 {
			return fmt.Errorf("scenario: delta device %d has negative channel", c.Device)
		}
	}
	for _, i := range d.Resets {
		if i < 0 || i >= n {
			return fmt.Errorf("scenario: delta reset device %d out of range [0,%d)", i, n)
		}
	}
	return nil
}

// ApplyDelta folds an allocation delta into the file. The file must
// already carry an allocation.
func (f *File) ApplyDelta(d *Delta) error {
	if f.Allocation == nil {
		return fmt.Errorf("scenario: cannot apply delta to a file without an allocation")
	}
	if err := d.Validate(len(f.Devices)); err != nil {
		return err
	}
	for _, c := range d.Changes {
		f.Allocation.SF[c.Device] = c.SF
		f.Allocation.TPdBm[c.Device] = c.TPdBm
		f.Allocation.Channel[c.Device] = c.Channel
	}
	return nil
}

// AppendDelta writes one delta as a single JSON line.
func AppendDelta(w io.Writer, d *Delta) error {
	buf, err := json.Marshal(d)
	if err != nil {
		return fmt.Errorf("scenario: encode delta: %w", err)
	}
	buf = append(buf, '\n')
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("scenario: write delta: %w", err)
	}
	return nil
}

// ReadDeltas decodes a JSON-lines delta stream (blank lines skipped).
func ReadDeltas(r io.Reader) ([]Delta, error) {
	var out []Delta
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var d Delta
		if err := json.Unmarshal(b, &d); err != nil {
			return nil, fmt.Errorf("scenario: delta line %d: %w", line, err)
		}
		out = append(out, d)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scenario: read deltas: %w", err)
	}
	return out, nil
}
