package scenario

import (
	"bytes"
	"strings"
	"testing"

	"eflora/internal/geo"
	"eflora/internal/lora"
	"eflora/internal/model"
	"eflora/internal/rng"
)

func fixture() (*model.Network, model.Allocation) {
	r := rng.New(1)
	net := &model.Network{
		Devices:  geo.UniformDisc(25, 2000, r),
		Gateways: geo.GridGateways(2, 2000),
		Env:      make([]int, 25),
	}
	p := model.DefaultParams()
	a := model.NewAllocation(25, p.Plan)
	for i := range a.SF {
		a.SF[i] = lora.SF7 + lora.SF(i%6)
		a.TPdBm[i] = 2 + float64(2*(i%7))
		a.Channel[i] = i % 8
	}
	return net, a
}

func TestRoundTrip(t *testing.T) {
	net, a := fixture()
	f := FromNetwork(net, &a, "test fixture")
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	net2 := got.Network()
	if net2.N() != net.N() || net2.G() != net.G() {
		t.Fatalf("sizes changed: %d/%d", net2.N(), net2.G())
	}
	for i := range net.Devices {
		if net.Devices[i] != net2.Devices[i] {
			t.Fatalf("device %d moved", i)
		}
	}
	a2, ok := got.AllocationOf()
	if !ok {
		t.Fatal("allocation lost")
	}
	for i := range a.SF {
		if a.SF[i] != a2.SF[i] || a.TPdBm[i] != a2.TPdBm[i] || a.Channel[i] != a2.Channel[i] {
			t.Fatalf("allocation changed at %d", i)
		}
	}
	if got.Comment != "test fixture" {
		t.Errorf("comment = %q", got.Comment)
	}
}

func TestRoundTripWithoutAllocation(t *testing.T) {
	net, _ := fixture()
	f := FromNetwork(net, nil, "")
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got.AllocationOf(); ok {
		t.Error("phantom allocation appeared")
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"garbage":       "not json",
		"unknown field": `{"version":1,"devices":[{"x":0,"y":0}],"gateways":[{"x":0,"y":0}],"bogus":1}`,
		"wrong version": `{"version":99,"devices":[{"x":0,"y":0}],"gateways":[{"x":0,"y":0}]}`,
		"no devices":    `{"version":1,"devices":[],"gateways":[{"x":0,"y":0}]}`,
		"no gateways":   `{"version":1,"devices":[{"x":0,"y":0}],"gateways":[]}`,
		"mis-sized env": `{"version":1,"devices":[{"x":0,"y":0}],"gateways":[{"x":0,"y":0}],"env":[0,0]}`,
		"bad SF":        `{"version":1,"devices":[{"x":0,"y":0}],"gateways":[{"x":0,"y":0}],"allocation":{"sf":[3],"tpDBm":[14],"channel":[0]}}`,
		"short alloc":   `{"version":1,"devices":[{"x":0,"y":0},{"x":1,"y":1}],"gateways":[{"x":0,"y":0}],"allocation":{"sf":[7],"tpDBm":[14],"channel":[0]}}`,
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestFileUsableWithEvaluator(t *testing.T) {
	net, a := fixture()
	f := FromNetwork(net, &a, "")
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	net2 := got.Network()
	a2, _ := got.AllocationOf()
	p := model.DefaultParams()
	ev, err := model.NewEvaluator(net2, p, a2, model.ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	if min, _ := ev.MinEE(); min < 0 {
		t.Errorf("min EE %v", min)
	}
}
