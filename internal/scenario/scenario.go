// Package scenario serializes deployments and allocations to JSON so the
// command-line tools can hand results to each other (and to downstream
// tooling) instead of regenerating networks from seeds.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"

	"eflora/internal/geo"
	"eflora/internal/lora"
	"eflora/internal/model"
)

// File is the on-disk format: a deployment plus an optional allocation.
type File struct {
	// Version guards against future format changes.
	Version int `json:"version"`
	// Comment is free-form provenance (tool, seed, date).
	Comment string `json:"comment,omitempty"`

	Devices  []PointJSON `json:"devices"`
	Gateways []PointJSON `json:"gateways"`
	// Env holds per-device environment class indices (optional).
	Env []int `json:"env,omitempty"`
	// IntervalS holds per-device reporting intervals (optional).
	IntervalS []float64 `json:"intervalS,omitempty"`

	// Allocation is present when resources have been assigned.
	Allocation *AllocationJSON `json:"allocation,omitempty"`
}

// PointJSON is a position in meters.
type PointJSON struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// AllocationJSON carries per-device resource assignments.
type AllocationJSON struct {
	SF      []int     `json:"sf"`
	TPdBm   []float64 `json:"tpDBm"`
	Channel []int     `json:"channel"`
}

// CurrentVersion of the format.
const CurrentVersion = 1

// FromNetwork builds a File from a deployment and optional allocation
// (pass nil to omit).
func FromNetwork(net *model.Network, a *model.Allocation, comment string) *File {
	f := &File{
		Version: CurrentVersion,
		Comment: comment,
	}
	for _, d := range net.Devices {
		f.Devices = append(f.Devices, PointJSON{X: d.X, Y: d.Y})
	}
	for _, g := range net.Gateways {
		f.Gateways = append(f.Gateways, PointJSON{X: g.X, Y: g.Y})
	}
	if net.Env != nil {
		f.Env = append([]int(nil), net.Env...)
	}
	if net.IntervalS != nil {
		f.IntervalS = append([]float64(nil), net.IntervalS...)
	}
	if a != nil {
		aj := &AllocationJSON{TPdBm: append([]float64(nil), a.TPdBm...)}
		for _, s := range a.SF {
			aj.SF = append(aj.SF, int(s))
		}
		aj.Channel = append([]int(nil), a.Channel...)
		f.Allocation = aj
	}
	return f
}

// Network reconstructs the deployment.
func (f *File) Network() *model.Network {
	net := &model.Network{}
	for _, p := range f.Devices {
		net.Devices = append(net.Devices, geo.Point{X: p.X, Y: p.Y})
	}
	for _, p := range f.Gateways {
		net.Gateways = append(net.Gateways, geo.Point{X: p.X, Y: p.Y})
	}
	if f.Env != nil {
		net.Env = append([]int(nil), f.Env...)
	}
	if f.IntervalS != nil {
		net.IntervalS = append([]float64(nil), f.IntervalS...)
	}
	return net
}

// AllocationOf reconstructs the allocation; ok is false when the file has
// none.
func (f *File) AllocationOf() (model.Allocation, bool) {
	if f.Allocation == nil {
		return model.Allocation{}, false
	}
	a := model.Allocation{
		TPdBm:   append([]float64(nil), f.Allocation.TPdBm...),
		Channel: append([]int(nil), f.Allocation.Channel...),
	}
	for _, s := range f.Allocation.SF {
		a.SF = append(a.SF, lora.SF(s))
	}
	return a, true
}

// Validate checks structural consistency.
func (f *File) Validate() error {
	if f.Version != CurrentVersion {
		return fmt.Errorf("scenario: unsupported version %d (want %d)", f.Version, CurrentVersion)
	}
	n := len(f.Devices)
	if n == 0 {
		return fmt.Errorf("scenario: no devices")
	}
	if len(f.Gateways) == 0 {
		return fmt.Errorf("scenario: no gateways")
	}
	if f.Env != nil && len(f.Env) != n {
		return fmt.Errorf("scenario: env length %d != devices %d", len(f.Env), n)
	}
	if f.IntervalS != nil && len(f.IntervalS) != n {
		return fmt.Errorf("scenario: intervals length %d != devices %d", len(f.IntervalS), n)
	}
	if a := f.Allocation; a != nil {
		if len(a.SF) != n || len(a.TPdBm) != n || len(a.Channel) != n {
			return fmt.Errorf("scenario: allocation sized %d/%d/%d for %d devices",
				len(a.SF), len(a.TPdBm), len(a.Channel), n)
		}
		for i, s := range a.SF {
			if !lora.SF(s).Valid() {
				return fmt.Errorf("scenario: device %d has invalid SF %d", i, s)
			}
		}
	}
	return nil
}

// Write encodes the file as indented JSON.
func (f *File) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(f); err != nil {
		return fmt.Errorf("scenario: encode: %w", err)
	}
	return nil
}

// Read decodes and validates a scenario file.
func Read(r io.Reader) (*File, error) {
	var f File
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("scenario: decode: %w", err)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}
