package par

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersDefaultsToNumCPU(t *testing.T) {
	if got := Workers(0); got != runtime.NumCPU() {
		t.Errorf("Workers(0) = %d, want %d", got, runtime.NumCPU())
	}
	if got := Workers(-3); got != runtime.NumCPU() {
		t.Errorf("Workers(-3) = %d, want %d", got, runtime.NumCPU())
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 1000
		counts := make([]int32, n)
		For(workers, n, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForInlineWhenSingleWorker(t *testing.T) {
	// With one worker the iterations must run in order on the calling
	// goroutine (no interleaving), which callers may rely on for debugging.
	var order []int
	For(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("inline order = %v", order)
		}
	}
}

func TestForEmptyAndNegative(t *testing.T) {
	ran := false
	For(4, 0, func(int) { ran = true })
	For(4, -1, func(int) { ran = true })
	if ran {
		t.Error("For ran iterations for n <= 0")
	}
}

func TestFirstErrPicksLowestIndex(t *testing.T) {
	e1, e2 := errors.New("one"), errors.New("two")
	if err := FirstErr([]error{nil, e1, e2}); err != e1 {
		t.Errorf("FirstErr = %v, want %v", err, e1)
	}
	if err := FirstErr([]error{nil, nil}); err != nil {
		t.Errorf("FirstErr = %v, want nil", err)
	}
	if err := FirstErr(nil); err != nil {
		t.Errorf("FirstErr(nil) = %v", err)
	}
}
