// Package par provides the repository's bounded, deterministic fan-out
// primitive. Every parallel hot path (gateway replay in sim, trial and
// data-point fan-out in exp, candidate scans in alloc) funnels through
// For, so a single knob — a Parallelism field defaulting to
// runtime.NumCPU() — controls the goroutine budget at each level, and a
// worker count of 1 degenerates to a plain loop with zero overhead.
//
// Determinism contract: For only schedules work; callers write results
// into index-addressed slots and merge them in index order afterward, so
// the outcome of a fan-out is bit-identical at any worker count.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a parallelism knob: values <= 0 select
// runtime.NumCPU(), anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// For runs fn(i) for every i in [0, n) using up to Workers(workers)
// goroutines, and returns when all calls have completed. Iterations are
// handed out dynamically, so uneven task costs still keep every worker
// busy. With an effective worker count of 1 (or n <= 1) it runs inline on
// the calling goroutine.
//
// fn must confine its side effects to the i-th slot of caller-owned
// storage; For gives no ordering guarantees between iterations.
func For(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// FirstErr returns the lowest-index non-nil error of a per-slot error
// slice — the error a sequential loop over the same work would have
// returned first — or nil if every slot succeeded.
func FirstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
