// Package eflora reproduces "Towards Energy-Fairness in LoRa Networks"
// (Zhao, Gao, Du, Min, Mao, Singhal; IEEE ICDCS 2019): the EF-LoRa
// max-min energy-fairness resource allocator for multi-gateway LoRa
// networks, its analytical network model, the baseline allocators it is
// evaluated against, and a packet-level LoRaWAN simulator substituting for
// the paper's NS-3 testbed.
//
// Layout:
//
//   - internal/lora     — LoRa PHY: spreading factors, time-on-air,
//     sensitivities, channel plans
//   - internal/model    — the analytical multi-gateway network model
//     (Section III) and the incremental evaluator
//   - internal/alloc    — EF-LoRa greedy (Algorithm 1), Legacy-LoRa,
//     RS-LoRa, fixed-TP ablation, incremental maintenance
//   - internal/sim      — discrete-event packet simulator (NS-3 substitute)
//   - internal/exp      — drivers regenerating every evaluation table and
//     figure
//   - cmd/eflora, cmd/eflora-sim, cmd/eflora-exp — command-line tools
//   - examples/         — runnable scenario walk-throughs
//
// See README.md for a guided tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results.
package eflora

// Version identifies this reproduction release.
const Version = "1.0.0"
