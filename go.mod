module eflora

go 1.22
