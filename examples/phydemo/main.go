// PHY demo: validates the paper's physical-layer assumptions from first
// principles using the chirp-level modem in internal/phy —
//
//  1. why the paper fixes coding rate 4/7 (a fully corrupted chirp symbol
//     is repaired; CR 4/5 only detects it), and
//  2. why larger spreading factors decode at lower SNR (Table IV),
//     measured as symbol error rates across an AWGN channel.
//
// Run with:
//
//	go run ./examples/phydemo
package main

import (
	"fmt"
	"log"

	"eflora/internal/lora"
	"eflora/internal/phy"
	"eflora/internal/rng"
)

func main() {
	fmt.Println("1. Coding-rate rationale (paper Section III-A)")
	payload := []byte("EF-LoRa")
	for _, cr := range []lora.CodingRate{lora.CR45, lora.CR47} {
		codec, err := phy.NewCodec(lora.SF8, cr)
		if err != nil {
			log.Fatal(err)
		}
		symbols := codec.Encode(payload)
		symbols[2] ^= 0x5A // destroy one chirp symbol
		got, corrected, bad, err := codec.Decode(symbols, len(payload))
		if err != nil {
			log.Fatal(err)
		}
		ok := string(got) == string(payload) && bad == 0
		fmt.Printf("   CR %v: one corrupted symbol -> recovered=%v (corrected %d codewords, %d uncorrectable)\n",
			cr, ok, corrected, bad)
	}

	fmt.Println("\n2. Spreading-factor processing gain (paper Table IV)")
	fmt.Printf("   %-6s", "SNR")
	sfs := []lora.SF{lora.SF7, lora.SF9, lora.SF11}
	for _, sf := range sfs {
		fmt.Printf("  %8v", sf)
	}
	fmt.Println()
	r := rng.New(42)
	for _, snr := range []float64{-6, -10, -14, -18} {
		fmt.Printf("   %-4.0fdB", snr)
		for _, sf := range sfs {
			modem, err := phy.NewModem(sf)
			if err != nil {
				log.Fatal(err)
			}
			const trials = 40
			errs := 0
			for i := 0; i < trials; i++ {
				s := r.Intn(modem.SymbolCount())
				sig, err := modem.Modulate(s)
				if err != nil {
					log.Fatal(err)
				}
				got, err := modem.Demodulate(phy.AWGN(sig, snr, r))
				if err != nil {
					log.Fatal(err)
				}
				if got != s {
					errs++
				}
			}
			fmt.Printf("  %7.0f%%", 100*float64(errs)/trials)
		}
		fmt.Println()
	}
	fmt.Println("\n   (symbol error rate: larger SFs stay clean at SNRs where SF7 fails,")
	fmt.Println("    the mechanism behind the per-SF demodulation thresholds)")
}
