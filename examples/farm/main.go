// Smart-farming gateway planning: how many gateways does a sparse rural
// deployment need before energy fairness stops improving? This example
// sweeps the gateway count for a fixed 500-sensor farm and reports the
// worst device's energy efficiency and the network lifetime at each step —
// the operational question behind the paper's Fig. 7.
//
// It also demonstrates the incremental allocator: after the sweep, ten new
// sensors join the farm one by one without re-optimizing the whole
// network.
//
// Run with:
//
//	go run ./examples/farm
package main

import (
	"fmt"
	"log"

	"eflora/internal/alloc"
	"eflora/internal/core"
	"eflora/internal/geo"
	"eflora/internal/lifetime"
	"eflora/internal/radio"
	"eflora/internal/rng"
	"eflora/internal/sim"
)

func main() {
	const devices = 500
	battery := radio.NewBatteryFromMilliampHours(2400, 3.3)

	fmt.Println("Gateway planning for a 500-sensor farm (6 km disc):")
	fmt.Printf("%9s %16s %16s\n", "gateways", "min EE (bits/mJ)", "lifetime (days)")

	var best *core.Network
	var bestAlloc core.Scenario
	_ = bestAlloc
	for _, gws := range []int{1, 2, 3, 5, 8} {
		netw, err := core.Build(core.Scenario{
			Devices:  devices,
			Gateways: gws,
			RadiusM:  6000,
			Seed:     11,
		})
		if err != nil {
			log.Fatal(err)
		}
		a, err := netw.Allocate("eflora", alloc.Options{})
		if err != nil {
			log.Fatal(err)
		}
		res, err := netw.Simulate(a, sim.Config{PacketsPerDevice: 40, Seed: 12})
		if err != nil {
			log.Fatal(err)
		}
		lt, err := lifetime.Compute(res.RetxAvgPowerW, battery, lifetime.DefaultDeadFraction)
		if err != nil {
			log.Fatal(err)
		}
		minEE := res.EE[0]
		for _, v := range res.EE {
			if v < minEE {
				minEE = v
			}
		}
		fmt.Printf("%9d %16.3f %16.1f\n", gws, core.BitsPerMilliJoule(minEE), lifetime.Days(lt.NetworkS))
		best = netw
	}

	// Season expansion: ten more sensors appear in a new field; the
	// incremental allocator assigns them resources without disturbing
	// the existing 500.
	fmt.Println("\nIncremental expansion with 10 new sensors:")
	a, err := best.Allocate("eflora", alloc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	inc, err := alloc.NewIncremental(best.Net, best.Params, a, alloc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	before, err := inc.MinEE()
	if err != nil {
		log.Fatal(err)
	}
	r := rng.New(99)
	for i := 0; i < 10; i++ {
		pos := geo.Point{
			X: 4000 + 500*r.Float64(),
			Y: -1000 + 2000*r.Float64(),
		}
		if _, err := inc.AddDevice(pos, 0); err != nil {
			log.Fatal(err)
		}
	}
	after, err := inc.MinEE()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  min EE before: %.3f bits/mJ\n", core.BitsPerMilliJoule(before))
	fmt.Printf("  min EE after:  %.3f bits/mJ (%d sensors)\n", core.BitsPerMilliJoule(after), inc.N())
	rep, err := inc.Reoptimize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  after full re-optimization: %.3f bits/mJ (%d passes, %v)\n",
		core.BitsPerMilliJoule(rep.FinalMinEE), rep.Passes, rep.Elapsed.Round(1e6))
}
