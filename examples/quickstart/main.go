// Quickstart: build a small multi-gateway LoRa network, allocate resources
// with EF-LoRa, and compare the worst device's energy efficiency before
// and after against default LoRaWAN behaviour.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"eflora/internal/alloc"
	"eflora/internal/core"
	"eflora/internal/model"
)

func main() {
	// A 600-device deployment inside a 4 km disc with two gateways,
	// reporting every 20 seconds — busy enough that ALOHA collisions
	// matter, which is the regime EF-LoRa is built for.
	params := model.DefaultParams()
	params.PacketIntervalS = 20
	netw, err := core.Build(core.Scenario{
		Devices:  600,
		Gateways: 2,
		RadiusM:  4000,
		Seed:     42,
		Params:   &params,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Default LoRaWAN: every device on its smallest workable spreading
	// factor at maximum power, random channel.
	legacy, err := netw.Allocate("legacy", alloc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	legacyEval, err := netw.Evaluate(legacy)
	if err != nil {
		log.Fatal(err)
	}

	// EF-LoRa: greedy max-min optimization of (SF, TP, channel).
	ef, err := netw.Allocate("eflora", alloc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	efEval, err := netw.Evaluate(ef)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Energy efficiency of the worst end device (bits per mJ):")
	fmt.Printf("  legacy LoRaWAN: %.3f\n", core.BitsPerMilliJoule(legacyEval.MinEE))
	fmt.Printf("  EF-LoRa:        %.3f\n", core.BitsPerMilliJoule(efEval.MinEE))
	if legacyEval.MinEE > 0 {
		fmt.Printf("  improvement:    %.1f%%\n", (efEval.MinEE/legacyEval.MinEE-1)*100)
	}
	fmt.Println()
	fmt.Printf("Fairness (Jain index): legacy %.4f -> EF-LoRa %.4f\n", legacyEval.Jain, efEval.Jain)
	fmt.Printf("Bottleneck device: #%d at %.3f bits/mJ\n",
		efEval.MinIndex, core.BitsPerMilliJoule(efEval.MinEE))
}
