// End-to-end vertical slice: three sensors encode real LoRaWAN frames
// (AES-CMAC MIC, encrypted payload), modulate them through the chirp-level
// PHY, two gateways demodulate whatever the channel lets through at their
// respective SNRs, and the network server de-duplicates, verifies and
// decrypts the surviving copies — the full stack the EF-LoRa allocator
// sits on top of.
//
// Run with:
//
//	go run ./examples/endtoend
package main

import (
	"fmt"
	"log"

	"eflora/internal/geo"
	"eflora/internal/lora"
	"eflora/internal/lorawan"
	"eflora/internal/model"
	"eflora/internal/netserver"
	"eflora/internal/phy"
	"eflora/internal/rng"
)

func main() {
	env := model.LoSPathLoss(903e6, 2.7)
	gateways := []geo.Point{{X: -1200, Y: 0}, {X: 1200, Y: 0}}
	type sensor struct {
		name string
		pos  geo.Point
		sf   lora.SF
		dev  netserver.Device
	}
	sensors := []sensor{
		{"soil-a", geo.Point{X: -900, Y: 300}, lora.SF7, device(0x11)},
		{"soil-b", geo.Point{X: 400, Y: -2200}, lora.SF9, device(0x22)},
		{"tank-c", geo.Point{X: 3500, Y: 1500}, lora.SF11, device(0x33)},
	}
	server := netserver.New([]netserver.Device{sensors[0].dev, sensors[1].dev, sensors[2].dev})
	r := rng.New(2026)
	const tpDBm = 14.0
	noiseDBm := model.DefaultParams().NoiseDBm

	now := 0.0
	for fcnt := uint32(1); fcnt <= 3; fcnt++ {
		for _, s := range sensors {
			frame, err := lorawan.Encode(lorawan.Frame{
				MType:   lorawan.UnconfirmedDataUp,
				DevAddr: s.dev.DevAddr,
				FCnt:    fcnt,
				FPort:   1,
				Payload: []byte(fmt.Sprintf("%s#%d", s.name, fcnt)),
			}, s.dev.Keys)
			if err != nil {
				log.Fatal(err)
			}
			codec, err := phy.NewCodec(s.sf, lora.CR47)
			if err != nil {
				log.Fatal(err)
			}
			modem, err := phy.NewModem(s.sf)
			if err != nil {
				log.Fatal(err)
			}
			symbols := codec.Encode(frame)
			fmt.Printf("%s (SF%d, FCnt %d): %d-byte frame -> %d chirp symbols\n",
				s.name, int(s.sf), fcnt, len(frame), len(symbols))

			for gw, gwPos := range gateways {
				// Per-sample SNR at this gateway from path loss + fading.
				dist := s.pos.Dist(gwPos)
				snrDB := tpDBm + env.GainDB(dist) - noiseDBm +
					lora.LinearToDB(r.RayleighPowerGain())
				rx := make([]int, 0, len(symbols))
				for _, sym := range symbols {
					sig, err := modem.Modulate(sym)
					if err != nil {
						log.Fatal(err)
					}
					got, err := modem.Demodulate(phy.AWGN(sig, snrDB, r))
					if err != nil {
						log.Fatal(err)
					}
					rx = append(rx, got)
				}
				decoded, corrected, bad, err := codec.Decode(rx, len(frame))
				if err != nil || bad > 0 {
					fmt.Printf("  gw%d @ %.0fm: lost (SNR %.1f dB, %d bad codewords)\n",
						gw, dist, snrDB, bad)
					continue
				}
				fmt.Printf("  gw%d @ %.0fm: demodulated (SNR %.1f dB, %d corrected) -> forwarding\n",
					gw, dist, snrDB, corrected)
				if err := server.HandleUplink(netserver.Uplink{
					Gateway: gw, ReceivedAtS: now, SNRdB: snrDB, PHYPayload: decoded,
				}); err != nil {
					fmt.Printf("  gw%d: server rejected copy: %v\n", gw, err)
				}
			}
			now += 10
		}
	}
	server.Flush()

	fmt.Println("\nNetwork server:")
	for _, d := range server.Deliveries() {
		fmt.Printf("  dev %08x FCnt %d via %d gateway(s): %q\n",
			d.DevAddr, d.FCnt, len(d.Gateways), d.Payload)
	}
	fmt.Printf("  merged duplicates: %d, rejected: %d\n", server.Duplicates, server.Rejected)
}

// device provisions deterministic session keys.
func device(addr uint32) netserver.Device {
	var k lorawan.Keys
	for i := range k.NwkSKey {
		k.NwkSKey[i] = byte(addr) + byte(i)
		k.AppSKey[i] = byte(addr) ^ byte(i*7)
	}
	return netserver.Device{DevAddr: addr, Keys: k}
}
