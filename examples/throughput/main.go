// Throughput fairness: the paper's future-work variant of the max-min
// objective (Section III-B mentions extending the model to throughput
// fairness). The same greedy machinery optimizes delivered bits per second
// instead of bits per joule; this example shows how the two objectives
// allocate the same network differently and what each one buys.
//
// Run with:
//
//	go run ./examples/throughput
package main

import (
	"fmt"
	"log"

	"eflora/internal/alloc"
	"eflora/internal/core"
	"eflora/internal/lora"
	"eflora/internal/model"
	"eflora/internal/stats"
)

func main() {
	const (
		devices  = 500
		gateways = 2
	)
	run := func(objective model.Objective) (model.Allocation, *core.Network) {
		p := model.DefaultParams()
		p.TrafficDutyCycle = 0.05 // congested regime
		p.Objective = objective
		netw, err := core.Build(core.Scenario{
			Devices: devices, Gateways: gateways, RadiusM: 4000, Seed: 5, Params: &p,
		})
		if err != nil {
			log.Fatal(err)
		}
		a, err := netw.Allocate("eflora", alloc.Options{})
		if err != nil {
			log.Fatal(err)
		}
		return a, netw
	}

	eeAlloc, eeNet := run(model.ObjectiveEnergyEfficiency)
	tpAlloc, tpNet := run(model.ObjectiveThroughput)

	// Score both allocations under both metrics.
	score := func(netw *core.Network, a model.Allocation, objective model.Objective) float64 {
		p := netw.Params
		p.Objective = objective
		ev, err := model.NewEvaluator(netw.Net, p, a, model.ModeExact)
		if err != nil {
			log.Fatal(err)
		}
		min, _ := ev.MinEE()
		return min
	}
	fmt.Printf("%-28s %20s %22s\n", "allocation optimized for", "min EE (bits/mJ)", "min throughput (bit/s)")
	fmt.Printf("%-28s %20.3f %22.4f\n", "energy efficiency (paper)",
		core.BitsPerMilliJoule(score(eeNet, eeAlloc, model.ObjectiveEnergyEfficiency)),
		score(eeNet, eeAlloc, model.ObjectiveThroughput))
	fmt.Printf("%-28s %20.3f %22.4f\n", "throughput (future work)",
		core.BitsPerMilliJoule(score(tpNet, tpAlloc, model.ObjectiveEnergyEfficiency)),
		score(tpNet, tpAlloc, model.ObjectiveThroughput))

	// How do the SF choices differ?
	hist := func(a model.Allocation) map[lora.SF]int {
		m := make(map[lora.SF]int)
		for _, s := range a.SF {
			m[s]++
		}
		return m
	}
	he, ht := hist(eeAlloc), hist(tpAlloc)
	fmt.Println("\nSF distribution (EE-optimized vs throughput-optimized):")
	for _, s := range lora.SFs() {
		fmt.Printf("  %v: %4d vs %4d\n", s, he[s], ht[s])
	}

	mean := func(a model.Allocation) float64 {
		return stats.Mean(a.TPdBm)
	}
	fmt.Printf("\nMean TX power: %.1f dBm (EE) vs %.1f dBm (throughput)\n", mean(eeAlloc), mean(tpAlloc))
	fmt.Println("\nUnder duty-cycle traffic air time is proportional to the reporting rate,")
	fmt.Println("so the throughput objective cares only about reliability while the EE")
	fmt.Println("objective also pays for every extra dB and symbol.")
}
