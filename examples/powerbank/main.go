// Power-allocation ablation (the paper's Fig. 9 decomposition): the same
// network allocated by full EF-LoRa, by EF-LoRa with power pinned to the
// maximum, and under different path-loss exponents. Shows how much of the
// fairness gain comes from transmission-power control and how robust the
// allocation is to the propagation environment.
//
// Run with:
//
//	go run ./examples/powerbank
package main

import (
	"fmt"
	"log"

	"eflora/internal/alloc"
	"eflora/internal/core"
	"eflora/internal/model"
	"eflora/internal/sim"
	"eflora/internal/stats"
)

func main() {
	const (
		devices  = 800
		gateways = 3
	)

	run := func(label string, params *model.Params, allocator string, radiusM float64) float64 {
		netw, err := core.Build(core.Scenario{
			Devices:  devices,
			Gateways: gateways,
			RadiusM:  radiusM,
			Seed:     21,
			Params:   params,
		})
		if err != nil {
			log.Fatal(err)
		}
		a, err := netw.Allocate(allocator, alloc.Options{})
		if err != nil {
			log.Fatal(err)
		}
		res, err := netw.Simulate(a, sim.Config{PacketsPerDevice: 50, Seed: 22})
		if err != nil {
			log.Fatal(err)
		}
		min := stats.Min(res.EE)
		fmt.Printf("%-36s min EE %8.3f bits/mJ   Jain %.4f\n",
			label, core.BitsPerMilliJoule(min), stats.JainIndex(res.EE))
		return min
	}

	// Run the ablation in a congested setting (2% airtime duty cycle):
	// with light traffic every method hits the same coverage-limited
	// bound and power control has nothing to trade.
	busy := model.DefaultParams()
	busy.TrafficDutyCycle = 0.02
	fmt.Printf("Power-control ablation on %d devices / %d gateways (2%% duty):\n\n", devices, gateways)
	full := run("EF-LoRa (full)", &busy, "eflora", 5000)
	fixed := run("EF-LoRa (max TP pinned)", &busy, "eflora-fixed", 5000)
	run("Legacy-LoRa", &busy, "legacy", 5000)
	if full > 0 {
		fmt.Printf("\nPinning TP changes the worst device's EE by %+.1f%% (paper: -26%%).\n\n",
			(fixed/full-1)*100)
	}

	// The beta sweep runs on a 2.5 km disc: under the literal power-law
	// attenuation, beta = 3.0 at 14 dBm cannot cover a 5 km disc at all.
	fmt.Println("Path-loss sensitivity (EF-LoRa, 2.5 km disc):")
	for _, beta := range []float64{2.4, 2.7, 3.0} {
		p := model.DefaultParams()
		p.Environments = []model.PathLoss{model.LoSPathLoss(903e6, beta)}
		run(fmt.Sprintf("beta = %.1f", beta), &p, "eflora", 2500)
	}

	// NLoS devices lose an extra 13 dB/decade beyond 300 m, so the mixed
	// scenario uses a 3 km disc — at 5 km they would simply be out of
	// range at the 14 dBm cap (min EE 0), measuring coverage rather than
	// allocation.
	fmt.Println("\nMixed LoS/NLoS environment (20% NLoS beyond 300 m, 3 km disc):")
	p := model.DefaultParams()
	p.Environments = []model.PathLoss{
		model.LoSPathLoss(903e6, 2.7),
		model.NLoSPathLoss(903e6, 2.7, 4.0, 300),
	}
	netw, err := core.Build(core.Scenario{
		Devices: devices, Gateways: gateways, RadiusM: 3000, Seed: 21, Params: &p,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Every fifth device is behind obstructions.
	env := make([]int, devices)
	for i := range env {
		if i%5 == 0 {
			env[i] = 1
		}
	}
	netw.Net.Env = env
	a, err := netw.Allocate("eflora", alloc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := netw.Simulate(a, sim.Config{PacketsPerDevice: 50, Seed: 22})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-36s min EE %8.3f bits/mJ   Jain %.4f\n",
		"EF-LoRa, 20% NLoS", core.BitsPerMilliJoule(stats.Min(res.EE)), stats.JainIndex(res.EE))
}
