// Smart-city metering: the workload the paper's introduction motivates.
// Two thousand meters report over five gateways; we compare the three
// allocation strategies end to end — analytical model, packet simulation,
// and battery lifetime — and print the energy-efficiency CDFs.
//
// Run with:
//
//	go run ./examples/smartcity
package main

import (
	"fmt"
	"log"

	"eflora/internal/alloc"
	"eflora/internal/core"
	"eflora/internal/lifetime"
	"eflora/internal/model"
	"eflora/internal/plot"
	"eflora/internal/radio"
	"eflora/internal/sim"
	"eflora/internal/stats"
)

func main() {
	const (
		devices  = 2000
		gateways = 5
		packets  = 40
	)
	// City sensors report every 30 seconds: a busy unslotted-ALOHA
	// network where collision management decides who drains first.
	params := model.DefaultParams()
	params.PacketIntervalS = 30
	netw, err := core.Build(core.Scenario{
		Devices:  devices,
		Gateways: gateways,
		RadiusM:  5000,
		Seed:     7,
		Params:   &params,
	})
	if err != nil {
		log.Fatal(err)
	}
	battery := radio.NewBatteryFromMilliampHours(2400, 3.3)

	var chart plot.Chart
	chart.Title = fmt.Sprintf("Smart city: CDF of device energy efficiency (%d meters, %d gateways)", devices, gateways)
	chart.XLabel = "bits/mJ"
	chart.YLabel = "P(X<=x)"

	fmt.Printf("%-12s %12s %12s %12s %14s\n", "method", "min EE", "mean EE", "Jain", "lifetime(10%)")
	for _, method := range []string{"legacy", "rslora", "eflora"} {
		a, err := netw.Allocate(method, alloc.Options{})
		if err != nil {
			log.Fatal(err)
		}
		res, err := netw.Simulate(a, sim.Config{PacketsPerDevice: packets, Seed: 99})
		if err != nil {
			log.Fatal(err)
		}
		lt, err := lifetime.Compute(res.RetxAvgPowerW, battery, lifetime.DefaultDeadFraction)
		if err != nil {
			log.Fatal(err)
		}
		ee := make([]float64, len(res.EE))
		for i, v := range res.EE {
			ee[i] = core.BitsPerMilliJoule(v)
		}
		s := stats.Summarize(ee)
		fmt.Printf("%-12s %9.3f/mJ %9.3f/mJ %12.4f %11.1f d\n",
			method, s.Min, s.Mean, stats.JainIndex(ee), lifetime.Days(lt.NetworkS))
		xs, ps := stats.NewECDF(ee).Points(40)
		chart.Add(method, xs, ps)
	}
	fmt.Println()
	fmt.Println(chart.Render())
}
