package eflora_test

import (
	"os"
	"testing"

	"eflora/internal/alloc"
	"eflora/internal/core"
	"eflora/internal/exp"
	"eflora/internal/geo"
	"eflora/internal/lora"
	"eflora/internal/lorawan"
	"eflora/internal/model"
	"eflora/internal/phy"
	"eflora/internal/rng"
	"eflora/internal/sim"
)

// benchCfg keeps whole-experiment benchmarks in the sub-second range per
// iteration; raise -scale via cmd/eflora-exp for paper-scale runs.
func benchCfg() exp.Config {
	return exp.Config{Scale: 0.02, Trials: 1, PacketsPerDevice: 15, Seed: 3}
}

// benchExperiment runs one experiment driver per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(id, benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper table and figure (DESIGN.md experiment index).

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }

// Hot-path micro-benchmarks.

func BenchmarkTimeOnAir(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += lora.TimeOnAir(21, lora.SF7+lora.SF(i%6), 125e3, lora.CR47)
	}
	_ = sink
}

func benchNetwork(n, g int) (*model.Network, model.Params, model.Allocation) {
	r := rng.New(1)
	net := &model.Network{
		Devices:  geo.UniformDisc(n, 4000, r),
		Gateways: geo.GridGateways(g, 4000),
	}
	p := model.DefaultParams()
	gains := model.Gains(net, p)
	a := model.NewAllocation(n, p.Plan)
	for i := 0; i < n; i++ {
		sf, ok := model.MinFeasibleSF(gains, i, p.Plan.MaxTxPowerDBm)
		if !ok {
			sf = lora.MaxSF
		}
		a.SF[i] = sf
		a.TPdBm[i] = p.Plan.MaxTxPowerDBm
		a.Channel[i] = i % p.Plan.NumChannels()
	}
	return net, p, a
}

// BenchmarkEvaluatorBuild measures constructing the analytical model for a
// 1000-device network.
func BenchmarkEvaluatorBuild(b *testing.B) {
	net, p, a := benchNetwork(1000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.NewEvaluator(net, p, a, model.ModeExact); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMinEEIf measures one greedy candidate evaluation — the inner
// loop of Algorithm 1.
func BenchmarkMinEEIf(b *testing.B) {
	net, p, a := benchNetwork(1000, 3)
	ev, err := model.NewEvaluator(net, p, a, model.ModeExact)
	if err != nil {
		b.Fatal(err)
	}
	cur, _ := ev.MinEE()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += ev.MinEEIfAbove(i%1000, lora.SF9, 8, i%8, cur)
	}
	_ = sink
}

// BenchmarkSetDevice measures a committed single-device reallocation.
func BenchmarkSetDevice(b *testing.B) {
	net, p, a := benchNetwork(1000, 3)
	ev, err := model.NewEvaluator(net, p, a, model.ModeExact)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sf := lora.SF7 + lora.SF(i%6)
		if err := ev.SetDevice(i%1000, sf, 8, i%8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEFLoRaAllocate measures a full greedy allocation on a
// 300-device network.
func BenchmarkEFLoRaAllocate(b *testing.B) {
	net, p, _ := benchNetwork(300, 3)
	ef := alloc.NewEFLoRa(alloc.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ef.Allocate(net, p, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulator measures the packet simulator's event loop
// (1000 devices x 20 packets x 3 gateways).
func BenchmarkSimulator(b *testing.B) {
	net, p, a := benchNetwork(1000, 3)
	sc := new(sim.Scratch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := sim.Config{PacketsPerDevice: 20, Seed: uint64(i), Scratch: sc}
		if _, err := sim.Run(net, p, a, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorNoScratch is the same workload without a reusable
// arena — the spread against BenchmarkSimulator is the allocation cost a
// cold caller pays per run.
func BenchmarkSimulatorNoScratch(b *testing.B) {
	net, p, a := benchNetwork(1000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(net, p, a, sim.Config{PacketsPerDevice: 20, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// Parallel-vs-sequential benchmarks: same workloads pinned to one worker
// and fanned out across all CPUs. Results are bit-identical either way;
// the spread measures the deterministic parallel engine's speedup (near
// 1x on a single-core host, where only the structure is exercised).

// BenchmarkFig5Sequential and BenchmarkFig5Parallel fan the (gateway
// count x method) grid and the trials inside each cell out across
// workers.
func BenchmarkFig5Sequential(b *testing.B) { benchFig5(b, 1) }
func BenchmarkFig5Parallel(b *testing.B)   { benchFig5(b, 0) }

func benchFig5(b *testing.B, workers int) {
	b.Helper()
	cfg := benchCfg()
	cfg.Trials = 2
	cfg.Parallelism = workers
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run("fig5", cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorSequential / Parallel replay nine gateways serially
// vs concurrently.
func BenchmarkSimulatorSequential(b *testing.B) { benchSimulator(b, 1) }
func BenchmarkSimulatorParallel(b *testing.B)   { benchSimulator(b, 0) }

func benchSimulator(b *testing.B, workers int) {
	b.Helper()
	net, p, a := benchNetwork(1000, 9)
	sc := new(sim.Scratch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := sim.Config{PacketsPerDevice: 20, Seed: uint64(i), Parallelism: workers, Scratch: sc}
		if _, err := sim.Run(net, p, a, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorStreaming is BenchmarkSimulatorSequential in
// time-windowed streaming mode (60 s windows): same bit-identical
// results, O(devices + active window) resident schedule memory instead of
// the whole materialized schedule.
func BenchmarkSimulatorStreaming(b *testing.B) {
	net, p, a := benchNetwork(1000, 9)
	sc := new(sim.Scratch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := sim.Config{PacketsPerDevice: 20, Seed: uint64(i), Parallelism: 1,
			StreamWindowS: 60, Scratch: sc}
		if _, err := sim.Run(net, p, a, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEFLoRaAllocateSequential / Parallel scan each device's
// (SF, TP, channel) candidates serially vs across workers.
func BenchmarkEFLoRaAllocateSequential(b *testing.B) { benchEFLoRaAllocate(b, 1) }
func BenchmarkEFLoRaAllocateParallel(b *testing.B)   { benchEFLoRaAllocate(b, 0) }

func benchEFLoRaAllocate(b *testing.B, workers int) {
	b.Helper()
	net, p, _ := benchNetwork(300, 3)
	ef := alloc.NewEFLoRa(alloc.Options{Parallelism: workers})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ef.Allocate(net, p, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// Hierarchical-allocator scale benchmarks. The 1k and 10k sizes run in
// seconds; the 100k size and the exact-greedy 10k reference take minutes
// and only run with EFLORA_HEAVY_BENCH=1 (cmd/eflora-bench records them
// into BENCH_alloc.json, which TestHierarchicalScaleRecording pins).

func benchHierarchical(b *testing.B, n, g int) {
	b.Helper()
	net, p, _ := benchNetwork(n, g)
	h := alloc.NewHierarchical(alloc.HierOptions{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Allocate(net, p, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHierarchicalAllocate1k(b *testing.B)  { benchHierarchical(b, 1000, 3) }
func BenchmarkHierarchicalAllocate10k(b *testing.B) { benchHierarchical(b, 10000, 9) }

func BenchmarkHierarchicalAllocate100k(b *testing.B) {
	if os.Getenv("EFLORA_HEAVY_BENCH") == "" {
		b.Skip("minutes-long; set EFLORA_HEAVY_BENCH=1")
	}
	benchHierarchical(b, 100000, 9)
}

// BenchmarkExactGreedyAllocate10k is the flat exact greedy on the same
// 10k deployment as BenchmarkHierarchicalAllocate10k — the reference the
// hierarchical allocator must beat at 10x its size (see
// TestHierarchicalScaleRecording).
func BenchmarkExactGreedyAllocate10k(b *testing.B) {
	if os.Getenv("EFLORA_HEAVY_BENCH") == "" {
		b.Skip("minutes-long; set EFLORA_HEAVY_BENCH=1")
	}
	net, p, _ := benchNetwork(10000, 9)
	ef := alloc.NewEFLoRa(alloc.Options{Parallelism: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ef.Allocate(net, p, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChirpDemod measures the FFT chirp demodulator (SF9).
func BenchmarkChirpDemod(b *testing.B) {
	m, err := phy.NewModem(lora.SF9)
	if err != nil {
		b.Fatal(err)
	}
	sig, err := m.Modulate(123)
	if err != nil {
		b.Fatal(err)
	}
	noisy := phy.AWGN(sig, 0, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Demodulate(noisy); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoRaWANEncode measures frame serialization + MIC + encryption.
func BenchmarkLoRaWANEncode(b *testing.B) {
	var keys lorawan.Keys
	for i := range keys.NwkSKey {
		keys.NwkSKey[i] = byte(i)
		keys.AppSKey[i] = byte(i * 3)
	}
	f := lorawan.Frame{
		MType: lorawan.UnconfirmedDataUp, DevAddr: 0x2601AABB,
		FPort: 7, Payload: make([]byte, 8),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.FCnt = uint32(i)
		if _, err := lorawan.Encode(f, keys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipeline measures the full build -> allocate -> simulate
// pipeline the experiments iterate.
func BenchmarkPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		netw, err := core.Build(core.Scenario{Devices: 200, Gateways: 3, RadiusM: 4000, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		a, err := netw.Allocate("eflora", alloc.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := netw.Simulate(a, sim.Config{PacketsPerDevice: 15, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
